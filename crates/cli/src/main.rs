//! `seqio` — command-line front end for the storage-node simulator.
//!
//! ```text
//! seqio run   [flags]                 # one experiment, full report
//! seqio sweep --param <p> --values a,b,c [flags]   # table over one knob
//! seqio info                          # presets and flag reference
//! ```

mod args;
mod build;
mod common;

use std::process::ExitCode;

use args::Args;
use build::{experiment_from, EXPERIMENT_FLAGS};
use common::{CommonArgs, COMMON_FLAGS};
use seqio_node::RunResult;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let sub = argv.next().unwrap_or_else(|| "help".to_string());
    let rest: Vec<String> = argv.collect();
    let result = match sub.as_str() {
        "run" => cmd_run(rest),
        "sweep" => cmd_sweep(rest),
        "cluster" => cmd_cluster(rest),
        "client" => cmd_client(rest),
        "replay" => cmd_replay(rest),
        "report" => cmd_report(rest),
        "scenario" => cmd_scenario(rest),
        "info" | "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?} (try `seqio help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_run(rest: Vec<String>) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let mut known = EXPERIMENT_FLAGS.to_vec();
    known.extend_from_slice(COMMON_FLAGS);
    let unknown = args.unknown_flags(&known);
    if !unknown.is_empty() {
        return Err(format!("unknown flag(s): {}", unknown.join(", ")));
    }
    let common = CommonArgs::from_args(&args)?;
    let mut template = experiment_from(&args, &common)?;
    let disks = template.shape.total_disks();
    eprintln!(
        "running: {} disk(s), {} stream(s)/disk, {}B requests, {:?} window {}+{}",
        disks,
        template.streams_per_disk,
        template.request_bytes,
        frontend_name(&template),
        template.warmup,
        template.duration
    );
    // A single-node run is a 1-node scenario: the co-sim driver is the
    // same one `cluster run` uses, kept bit-identical to the historical
    // direct path by the equivalence oracle.
    let plan = template.faults.take();
    let mut b = seqio_cluster::Scenario::builder().template(template);
    if let Some(plan) = plan {
        b = b.faults(plan);
    }
    if let Some(j) = common.jobs {
        b = b.jobs(j);
    }
    let r = b.build().map_err(|e| e.to_string())?.run_node().map_err(|e| e.to_string())?;
    print_report(&r, disks);
    if let Some(path) = args.get("trace") {
        let trace = r.trace.as_ref().expect("tracing was enabled");
        std::fs::write(path, seqio_node::trace::to_csv(trace))
            .map_err(|e| format!("--trace {path}: {e}"))?;
        println!("trace:           {} records -> {path}", trace.len());
    }
    common.write_outputs(r.spans.as_ref(), r.metrics.as_ref())?;
    Ok(())
}

/// `true` when the user asked for a recording file a tabular subcommand
/// has nowhere to put.
fn common_output_requested(args: &Args) -> bool {
    args.get("trace-out").is_some() || args.get("metrics-out").is_some()
}

fn frontend_name(spec: &seqio_node::Experiment) -> &'static str {
    match spec.frontend {
        seqio_node::Frontend::Direct => "direct",
        seqio_node::Frontend::StreamScheduler(_) => "stream",
        seqio_node::Frontend::AllDispatched { .. } => "stream(all-dispatched)",
        seqio_node::Frontend::Linux { .. } => "linux",
    }
}

fn print_report(r: &RunResult, disks: usize) {
    println!("throughput:      {:>9.2} MB/s total", r.total_throughput_mbs());
    println!("per disk:        {:>9.2} MB/s", r.per_disk_throughput_mbs(disks));
    println!(
        "response time:   mean {:.2} ms   p50 {:.2} ms   p99 {:.2} ms",
        r.mean_response_ms(),
        r.p50_response_ms(),
        r.p99_response_ms()
    );
    println!(
        "requests:        {} completed, {} MiB delivered over {}",
        r.requests_completed,
        r.bytes_delivered >> 20,
        r.window
    );
    if let Some(m) = &r.server_metrics {
        println!(
            "scheduler:       {} streams detected, {} admissions, {} fills, {} memory hits, {} direct",
            m.streams_detected, m.admissions, m.fills_issued, m.memory_hits, m.direct_requests
        );
    }
    let total_seeks: u64 = r.disk_seeks.iter().sum();
    println!("disks:           {total_seeks} seeks across {disks} disk(s)");
    let errors: u64 = r.disk_read_errors.iter().sum();
    let retries: u64 = r.disk_retries.iter().sum();
    let timeouts: u64 = r.disk_timeouts.iter().sum();
    if errors + retries + timeouts > 0 {
        println!("faults:          {errors} read errors, {retries} retries, {timeouts} timeouts");
    }
}

/// `seqio cluster run --nodes K --shard POLICY [--faults SPEC
/// --fault-node I] [experiment flags]` — a multi-node cluster run: the
/// experiment flags describe each node's template, `--faults` (if given)
/// lands on `--fault-node` only, and the router shards the global stream
/// population across the nodes.
fn cmd_cluster(rest: Vec<String>) -> Result<(), String> {
    let mut rest = rest.into_iter();
    match rest.next().as_deref() {
        Some("run") => {}
        other => {
            return Err(format!(
                "cluster: expected `cluster run [flags]`, got {:?}",
                other.unwrap_or("nothing")
            ))
        }
    }
    let args = Args::parse(rest)?;
    let mut known = EXPERIMENT_FLAGS.to_vec();
    known.extend_from_slice(COMMON_FLAGS);
    known.extend_from_slice(&["nodes", "shard", "fault-node", "base-seed", "rebalance"]);
    let unknown = args.unknown_flags(&known);
    if !unknown.is_empty() {
        return Err(format!("unknown flag(s): {}", unknown.join(", ")));
    }
    let common = CommonArgs::from_args(&args)?;
    if args.get("trace").is_some() || common.trace_out.is_some() {
        return Err("cluster runs do not support per-request trace output yet".into());
    }

    let mut template = experiment_from(&args, &common)?;
    // `experiment_from` installs --faults on the template; the cluster
    // layer wants them on one node instead.
    let plan = template.faults.take();
    let nodes = args.u64_or("nodes", 1)? as usize;
    let policy = seqio_cluster::ShardPolicy::parse(args.get("shard").unwrap_or("hash"))
        .map_err(|e| format!("--shard: {e}"))?;
    let fault_node = args.u64_or("fault-node", 0)? as usize;
    if fault_node >= nodes.max(1) {
        return Err(format!("--fault-node: node {fault_node} past cluster size {nodes}"));
    }

    let disks = template.shape.total_disks();
    let mut b = seqio_cluster::Scenario::builder().template(template).nodes(nodes).policy(policy);
    if let Some(plan) = plan {
        b = b.node_fault(fault_node, plan);
    }
    if let Some(seed) = args.get("base-seed") {
        let s: u64 = seed.parse().map_err(|_| format!("--base-seed: bad integer {seed:?}"))?;
        b = b.base_seed(s);
    }
    if let Some(j) = common.jobs {
        b = b.jobs(j);
    }
    if let Some(interval) = args.get("rebalance") {
        let d = args::parse_duration(interval).map_err(|e| format!("--rebalance: {e}"))?;
        b = b.rebalance(seqio_cluster::RebalanceConfig::new(d));
    }
    let scenario = b.build().map_err(|e| e.to_string())?;
    eprintln!(
        "cluster: {} node(s) x {} disk(s), {} global stream(s), {} routing{}",
        nodes,
        disks,
        scenario.cluster().total_streams(),
        policy.name(),
        if scenario.cluster().rebalance.is_some() { ", mid-run rebalancing" } else { "" }
    );
    let c = scenario.run().map_err(|e| e.to_string())?;

    println!("{:>6} {:>9} {:>12} {:>10} {:>10}", "node", "streams", "MB/s", "mean ms", "window");
    for n in &c.nodes {
        match &n.result {
            Some(r) => println!(
                "{:>6} {:>9} {:>12.2} {:>10.2} {:>10}",
                n.node,
                n.assigned_streams,
                c.node_throughput_mbs(n.node),
                r.mean_response_ms(),
                r.window
            ),
            None => println!("{:>6} {:>9} {:>12} {:>10} {:>10}", n.node, 0, "-", "-", "skipped"),
        }
    }
    println!("throughput:      {:>9.2} MB/s aggregate over {}", c.total_throughput_mbs(), c.window);
    println!(
        "response time:   mean {:.2} ms   p99 {:.2} ms   worst node mean {:.2} ms",
        c.mean_response_ms(),
        c.p99_response_ms(),
        c.max_node_mean_response_ms()
    );
    println!(
        "requests:        {} completed, {} MiB delivered",
        c.requests_completed,
        c.bytes_delivered >> 20
    );
    if !c.migrations.is_empty() {
        println!("migrations:      {} stream move(s):", c.migrations.len());
        for m in &c.migrations {
            println!("    t={} stream {} node {} -> {}", m.at, m.stream, m.from, m.to);
        }
    }
    common.write_outputs(None, c.metrics.as_ref())?;
    Ok(())
}

/// `seqio client run [--nodes K] [--rate R --titles N --zipf S ...]
/// [experiment flags]` — an open-loop client/network run: sessions arrive
/// at `--rate` per second (optionally bursty or diurnal), pick Zipf-
/// popular titles, stream them from the cluster described by the
/// experiment flags, and receive their bytes across a shared `--link`.
/// Reports end-to-end session SLO percentiles. `--closed-loop` instead
/// wraps the plain cluster run (identical results) and adds the SLO.
fn cmd_client(rest: Vec<String>) -> Result<(), String> {
    let mut rest = rest.into_iter();
    match rest.next().as_deref() {
        Some("run") => {}
        other => {
            return Err(format!(
                "client: expected `client run [flags]`, got {:?}",
                other.unwrap_or("nothing")
            ))
        }
    }
    let args = Args::parse(rest)?;
    let mut known = EXPERIMENT_FLAGS.to_vec();
    known.extend_from_slice(COMMON_FLAGS);
    known.extend_from_slice(&[
        "nodes",
        "shard",
        "base-seed",
        "rate",
        "titles",
        "zipf",
        "session-requests",
        "lifetime",
        "link",
        "burst",
        "diurnal",
        "closed-loop",
        "correlate-out",
    ]);
    let unknown = args.unknown_flags(&known);
    if !unknown.is_empty() {
        return Err(format!("unknown flag(s): {}", unknown.join(", ")));
    }
    let common = CommonArgs::from_args(&args)?;
    if args.get("trace").is_some() {
        return Err("client runs do not support per-request trace output; use --trace-out".into());
    }

    let mut template = experiment_from(&args, &common)?;
    if args.get("correlate-out").is_some() {
        // Correlation joins on request spans: force span recording on
        // even when no --trace-out file was asked for.
        let obs = template.obs.take().unwrap_or_else(seqio_node::ObsConfig::new);
        template.obs = Some(obs.with_spans());
    }
    let nodes = args.u64_or("nodes", 1)? as usize;
    let policy = seqio_cluster::ShardPolicy::parse(args.get("shard").unwrap_or("hash"))
        .map_err(|e| format!("--shard: {e}"))?;

    let modulation = match (args.get("burst"), args.get("diurnal")) {
        (Some(_), Some(_)) => return Err("--burst and --diurnal are mutually exclusive".into()),
        (Some(spec), None) => {
            let p: Vec<&str> = spec.split(',').collect();
            let [period, duty, on_factor] = p[..] else {
                return Err(format!("--burst: expected PERIOD,DUTY,FACTOR, got {spec:?}"));
            };
            seqio_client::RateModulation::Bursty {
                period: args::parse_duration(period).map_err(|e| format!("--burst: {e}"))?,
                duty: duty.parse().map_err(|_| format!("--burst: bad duty {duty:?}"))?,
                on_factor: on_factor
                    .parse()
                    .map_err(|_| format!("--burst: bad factor {on_factor:?}"))?,
            }
        }
        (None, Some(spec)) => {
            let p: Vec<&str> = spec.split(',').collect();
            let [period, depth] = p[..] else {
                return Err(format!("--diurnal: expected PERIOD,DEPTH, got {spec:?}"));
            };
            seqio_client::RateModulation::Diurnal {
                period: args::parse_duration(period).map_err(|e| format!("--diurnal: {e}"))?,
                depth: depth.parse().map_err(|_| format!("--diurnal: bad depth {depth:?}"))?,
            }
        }
        (None, None) => seqio_client::RateModulation::Constant,
    };
    let arrivals = seqio_client::ArrivalConfig {
        rate_per_sec: match args.get("rate") {
            Some(v) => v.parse().map_err(|_| format!("--rate: bad number {v:?}"))?,
            None => 100.0,
        },
        modulation,
        titles: args.u64_or("titles", 1024)? as usize,
        zipf_exponent: match args.get("zipf") {
            Some(v) => v.parse().map_err(|_| format!("--zipf: bad number {v:?}"))?,
            None => 0.8,
        },
        requests_per_session: args.u64_or("session-requests", 4)?,
        session_lifetime: match args.get("lifetime") {
            Some(v) => Some(args::parse_duration(v).map_err(|e| format!("--lifetime: {e}"))?),
            None => None,
        },
    };
    let link = match args.get("link") {
        None | Some("inf") => seqio_client::LinkConfig::default(),
        Some(v) => seqio_client::LinkConfig {
            capacity_bps: args::parse_size(v).map_err(|e| format!("--link: {e}"))? as f64,
            ..seqio_client::LinkConfig::default()
        },
    };

    let open_loop = !args.switch("closed-loop");
    let mut b = seqio_client::ClientExperiment::builder()
        .template(template)
        .nodes(nodes)
        .policy(policy)
        .link(link);
    if open_loop {
        b = b.arrivals(arrivals.clone());
    }
    if let Some(seed) = args.get("base-seed") {
        let s: u64 = seed.parse().map_err(|_| format!("--base-seed: bad integer {seed:?}"))?;
        b = b.base_seed(s);
    }
    if let Some(j) = common.jobs {
        b = b.jobs(j);
    }
    if open_loop {
        eprintln!(
            "client: {} session(s)/s open loop over {} node(s), {} titles (zipf {}), link {}",
            arrivals.rate_per_sec,
            nodes,
            arrivals.titles,
            arrivals.zipf_exponent,
            args.get("link").unwrap_or("unconstrained"),
        );
    } else {
        eprintln!("client: closed loop over {nodes} node(s) (identity reduction + SLO)");
    }
    let xp = b.build();
    // The session schedule regenerates deterministically from the same
    // seeds the run will use; grab it before the run for the trace join.
    let schedule = if args.get("correlate-out").is_some() && open_loop {
        Some(xp.session_schedule().map_err(|e| e.to_string())?)
    } else {
        None
    };
    let c = xp.run().map_err(|e| e.to_string())?;

    println!("throughput:      {:>9.2} MB/s aggregate over {}", c.total_throughput_mbs(), c.window);
    println!(
        "requests:        {} completed, {} MiB delivered",
        c.requests_completed,
        c.bytes_delivered >> 20
    );
    match &c.slo {
        Some(slo) => {
            println!(
                "sessions:        {} arrived, {} completed ({:.1}% within lifetime)",
                slo.sessions,
                slo.completed,
                100.0 * slo.completion_ratio()
            );
            println!(
                "session SLO:     p50 {:.2} ms   p95 {:.2} ms   p99 {:.2} ms   p99.9 {:.2} ms",
                slo.p50_ms, slo.p95_ms, slo.p99_ms, slo.p999_ms
            );
            println!("                 mean {:.2} ms   max {:.2} ms", slo.mean_ms, slo.max_ms);
        }
        None => println!("sessions:        none completed inside the run window"),
    }
    let merged_spans: Option<Vec<seqio_node::SpanRecord>> = common.trace_out.as_ref().map(|_| {
        c.nodes
            .iter()
            .filter_map(|n| n.result.as_ref())
            .filter_map(|r| r.spans.as_ref())
            .flatten()
            .copied()
            .collect()
    });
    common.write_outputs(merged_spans.as_ref(), c.metrics.as_ref())?;
    if let Some(path) = args.get("correlate-out") {
        let traces = match &schedule {
            Some(s) => seqio_telemetry::correlate(&c, s),
            None => seqio_telemetry::correlate_cluster(&c),
        };
        let completed = traces.iter().filter(|t| t.latency().is_some()).count();
        let multi = traces.iter().filter(|t| t.node_path.len() > 1).count();
        std::fs::write(path, seqio_telemetry::traces_to_jsonl(&traces))
            .map_err(|e| format!("--correlate-out {path}: {e}"))?;
        println!(
            "traces:          {} session(s) correlated ({completed} completed, {multi} \
             multi-node) -> {path}",
            traces.len()
        );
    }
    Ok(())
}

fn cmd_replay(rest: Vec<String>) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let mut known = EXPERIMENT_FLAGS.to_vec();
    known.extend_from_slice(COMMON_FLAGS);
    known.push("trace-in");
    let unknown = args.unknown_flags(&known);
    if !unknown.is_empty() {
        return Err(format!("unknown flag(s): {}", unknown.join(", ")));
    }
    if args.get("jobs").is_some() {
        return Err("--jobs: replay is a single open-loop run".into());
    }
    let common = CommonArgs::from_args(&args)?;
    let path = args.get("trace-in").ok_or("replay needs --trace-in FILE")?;
    let csv = std::fs::read_to_string(path).map_err(|e| format!("--trace-in {path}: {e}"))?;
    let trace = seqio_node::trace::from_csv(&csv)?;
    // Replay stays on the direct single-node path: an open-loop replay
    // has no live streams the cluster driver could route or migrate.
    let mut spec = experiment_from(&args, &common)?;
    spec.replay = Some(trace);
    spec.validate()?;
    let disks = spec.shape.total_disks();
    eprintln!("replaying {} requests from {path}", spec.replay.as_ref().unwrap().len());
    let r = spec.run();
    print_report(&r, disks);
    if let Some(out) = args.get("trace") {
        let t = r.trace.as_ref().expect("tracing was enabled");
        std::fs::write(out, seqio_node::trace::to_csv(t))
            .map_err(|e| format!("--trace {out}: {e}"))?;
        println!("trace:           {} records -> {out}", t.len());
    }
    common.write_outputs(r.spans.as_ref(), r.metrics.as_ref())?;
    Ok(())
}

/// `seqio report --spans FILE [--phases] [--slo]` — summarizes a span
/// file written by `run --trace-out`, optionally with a per-phase latency
/// breakdown and (for files recorded through the client front end) the
/// network-inclusive SLO percentiles. `seqio report --trace FILE
/// [--correlate] [--attribute P] [--burn]` instead works over correlated
/// session traces written by `client run --correlate-out`: cross-node
/// session summaries, tail attribution of a latency percentile band, and
/// SLO burn-rate monitoring with deterministic alert transitions.
fn cmd_report(rest: Vec<String>) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let unknown =
        args.unknown_flags(&["spans", "phases", "slo", "trace", "correlate", "attribute", "burn"]);
    if !unknown.is_empty() {
        return Err(format!("unknown flag(s): {}", unknown.join(", ")));
    }
    if let Some(path) = args.get("trace") {
        if args.get("spans").is_some() {
            return Err("--spans and --trace are mutually exclusive".into());
        }
        return report_traces(&args, path);
    }
    if args.switch("correlate") || args.switch("burn") || attribute_band(&args).is_some() {
        return Err(
            "--correlate/--attribute/--burn need --trace FILE (from `client run --correlate-out`)"
                .into(),
        );
    }
    let path = args.get("spans").ok_or("report needs --spans FILE (from `run --trace-out`)")?;
    let csv = std::fs::read_to_string(path).map_err(|e| format!("--spans {path}: {e}"))?;
    let spans = seqio_node::span::spans_from_csv(&csv)?;
    if spans.is_empty() && (args.switch("phases") || args.switch("slo")) {
        return Err(format!(
            "--spans {path}: no spans to break down (the file has a header but no records)"
        ));
    }
    let breakdown = seqio_node::span::PhaseBreakdown::from_spans(&spans);
    let from_memory = spans.iter().filter(|s| s.from_memory).count();
    let faulted = spans.iter().filter(|s| s.retries > 0 || s.timed_out).count();
    println!(
        "{} spans ({} served from memory, {} touched by faults)",
        spans.len(),
        from_memory,
        faulted
    );
    if args.switch("phases") {
        println!("{:<18} {:>10} {:>10} {:>10}", "phase", "mean ms", "p50 ms", "p99 ms");
        // Enqueued marks the origin of every span; its duration is zero by
        // construction, so the table starts at classification.
        for phase in &seqio_node::SpanPhase::ALL[1..] {
            let h = &breakdown.phases[phase.index()];
            println!(
                "{:<18} {:>10.3} {:>10.3} {:>10.3}",
                phase.name(),
                h.mean().as_millis_f64(),
                h.quantile(0.5).unwrap_or_default().as_millis_f64(),
                h.quantile(0.99).unwrap_or_default().as_millis_f64()
            );
        }
        let t = &breakdown.total;
        println!(
            "{:<18} {:>10.3} {:>10.3} {:>10.3}",
            "end-to-end",
            t.mean().as_millis_f64(),
            t.quantile(0.5).unwrap_or_default().as_millis_f64(),
            t.quantile(0.99).unwrap_or_default().as_millis_f64()
        );
    } else {
        println!(
            "end-to-end:      mean {:.3} ms   p50 {:.3} ms   p99 {:.3} ms (try --phases)",
            breakdown.total.mean().as_millis_f64(),
            breakdown.total.quantile(0.5).unwrap_or_default().as_millis_f64(),
            breakdown.total.quantile(0.99).unwrap_or_default().as_millis_f64()
        );
    }
    if args.switch("slo") {
        // Network-inclusive latency exists only on spans the client tier
        // stamped: each completed session's final request.
        let latencies: Vec<_> = spans
            .iter()
            .filter(|s| s.stamp(seqio_node::SpanPhase::NetworkDelivered).is_some())
            .map(seqio_node::SpanRecord::total)
            .collect();
        // Zero completed sessions is a legitimate outcome (an overloaded
        // run, or a file recorded without a constrained link), not an
        // error — and certainly not a set of NaN percentiles. Report it
        // plainly.
        match seqio_cluster::SessionSlo::from_latencies(latencies.len() as u64, latencies) {
            Some(slo) => {
                println!(
                    "session SLO:     {} delivered sessions   p50 {:.2} ms   p95 {:.2} ms   \
                     p99 {:.2} ms   p99.9 {:.2} ms",
                    slo.completed, slo.p50_ms, slo.p95_ms, slo.p99_ms, slo.p999_ms
                );
            }
            None => println!(
                "session SLO:     no completed sessions (no span carries a network_delivered \
                 stamp; a constrained `seqio client run --link RATE` records them)"
            ),
        }
    }
    Ok(())
}

/// The percentile band `--attribute` asked for: an explicit spec, or
/// "p99" when given as a bare switch.
fn attribute_band(args: &Args) -> Option<String> {
    match args.get("attribute") {
        Some(spec) => Some(spec.to_string()),
        None if args.switch("attribute") => Some("p99".to_string()),
        None => None,
    }
}

/// The `--trace FILE` half of `seqio report`: correlated session traces.
fn report_traces(args: &Args, path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("--trace {path}: {e}"))?;
    let traces =
        seqio_telemetry::traces_from_jsonl(&text).map_err(|e| format!("--trace {path}: {e}"))?;
    let completed = traces.iter().filter(|t| t.latency().is_some()).count();
    let migrated: Vec<&seqio_telemetry::SessionTrace> =
        traces.iter().filter(|t| t.node_path.len() > 1).collect();
    let spans: usize = traces.iter().map(|t| t.spans.len()).sum();
    println!(
        "{} correlated session(s), {} span(s) ({} completed, {} crossed nodes)",
        traces.len(),
        spans,
        completed,
        migrated.len()
    );
    if args.switch("correlate") {
        let nodes =
            traces.iter().flat_map(|t| t.node_path.iter().copied()).max().map_or(0, |n| n + 1);
        println!("{:>6} {:>10} {:>10}", "node", "sessions", "spans");
        for k in 0..nodes {
            let sessions = traces.iter().filter(|t| t.node_path.contains(&k)).count();
            let node_spans = traces.iter().flat_map(|t| &t.spans).filter(|s| s.node == k).count();
            println!("{k:>6} {sessions:>10} {node_spans:>10}");
        }
        for t in &migrated {
            println!("session {:>6} crossed nodes {:?}", t.session, t.node_path);
        }
    }
    if let Some(spec) = attribute_band(args) {
        let lo =
            seqio_telemetry::parse_percentile(&spec).map_err(|e| format!("--attribute: {e}"))?;
        let tail = seqio_telemetry::TailAttribution::compute(&traces, lo, 1.0)
            .ok_or_else(|| format!("--attribute: no completed session in {path} to attribute"))?;
        print!("{}", tail.to_table());
    }
    if args.switch("burn") {
        // Monitor the run against its own distribution: threshold at its
        // p99 with a 1% budget, so a healthy run burns at ~1x.
        let latencies: Vec<_> = traces.iter().filter_map(|t| t.latency()).collect();
        let slo = seqio_cluster::SessionSlo::from_latencies(traces.len() as u64, latencies)
            .ok_or_else(|| format!("--burn: no completed session in {path} to monitor"))?;
        let cfg = seqio_telemetry::BurnRateConfig::from_slo(&slo);
        let report =
            seqio_telemetry::monitor(&traces, &cfg, seqio_simcore::SimDuration::from_millis(100))
                .map_err(|e| e.to_string())?;
        println!(
            "burn rate:       threshold {:.2} ms (own p99), budget {:.0}%, windows {}/{}",
            cfg.threshold.as_millis_f64(),
            cfg.target * 100.0,
            cfg.fast_window,
            cfg.slow_window
        );
        println!(
            "                 {} completed, {} violation(s), peak fast burn {:.2}x",
            report.completed, report.violations, report.peak_fast_burn
        );
        if report.alerts.is_empty() {
            println!("                 no alert transitions");
        }
        for a in &report.alerts {
            let state = match a.severity {
                Some(seqio_telemetry::AlertSeverity::Page) => "PAGE",
                Some(seqio_telemetry::AlertSeverity::Warn) => "warn",
                None => "clear",
            };
            println!("  t={} {state} (fast {:.2}x, slow {:.2}x)", a.at, a.fast_burn, a.slow_burn);
        }
    }
    Ok(())
}

/// `seqio scenario run|record|replay` — the scenario engine front end.
///
/// `run` generates a named scenario and drives it through the scenario
/// runner; `record` writes the generated trace to a text file without
/// running it; `replay` parses a recorded trace file and runs it. Record
/// followed by replay reproduces the original run bit-for-bit.
fn cmd_scenario(rest: Vec<String>) -> Result<(), String> {
    let mut rest = rest.into_iter();
    let verb = match rest.next() {
        Some(v) => v,
        None => return Err("scenario: expected `scenario run|record|replay [flags]`".into()),
    };
    let args = Args::parse(rest)?;
    let known: &[&str] =
        &["kind", "seed", "scale", "nodes", "adaptive", "direct", "jobs", "out", "trace", "faults"];
    let unknown = args.unknown_flags(known);
    if !unknown.is_empty() {
        return Err(format!("unknown flag(s): {}", unknown.join(", ")));
    }

    let seed = args.u64_or("seed", 11)?;
    let scale = match args.get("scale").unwrap_or("quick") {
        "quick" => seqio_scenario::MatrixScale::quick(),
        "full" => seqio_scenario::MatrixScale::full(),
        other => return Err(format!("--scale: expected quick|full, got {other:?}")),
    };

    match verb.as_str() {
        "run" | "record" => {
            let nodes = args.u64_or("nodes", 1)? as usize;
            if nodes == 0 {
                return Err("--nodes: need at least one node".into());
            }
            let kinds: Vec<&str> =
                seqio_scenario::ScenarioKind::ALL.iter().map(|k| k.name()).collect();
            let kind_s = args.get("kind").ok_or_else(|| {
                format!("scenario {verb}: needs --kind; one of {}", kinds.join("|"))
            })?;
            let kind = seqio_scenario::ScenarioKind::from_name(kind_s).ok_or_else(|| {
                format!("--kind: expected one of {}, got {kind_s:?}", kinds.join("|"))
            })?;
            let template = seqio_scenario::matrix_template(&scale, seed);
            let params = seqio_scenario::ScenarioParams::from_template(
                &template,
                nodes,
                scale.streams_per_disk,
            );
            let scenario =
                seqio_scenario::generate(kind, &params, seed).map_err(|e| e.to_string())?;
            if let Some(out) = args.get("out") {
                std::fs::write(out, scenario.trace.to_text())
                    .map_err(|e| format!("--out {out}: {e}"))?;
                println!(
                    "recorded:        {} op(s) on {nodes} node(s) -> {out}",
                    scenario.trace.ops.len()
                );
            } else if verb == "record" {
                return Err("scenario record: needs --out FILE".into());
            }
            if verb == "record" {
                return Ok(());
            }
            eprintln!(
                "scenario:        {} ({} op(s), {nodes} node(s), seed {seed}, window {}+{})",
                kind.name(),
                scenario.trace.ops.len(),
                scale.warmup,
                scale.duration
            );
            run_scenario_trace(&args, template, scenario.trace, scenario.faults)
        }
        "replay" => {
            let path = args.get("trace").ok_or("scenario replay: needs --trace FILE")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("--trace {path}: {e}"))?;
            let trace = seqio_scenario::ScenarioTrace::from_text(&text)
                .map_err(|e| format!("--trace {path}: {e}"))?;
            let faults = match args.get("faults") {
                Some(spec) => Some(
                    seqio_simcore::FaultPlan::parse(spec).map_err(|e| format!("--faults: {e}"))?,
                ),
                None => None,
            };
            let template = seqio_scenario::matrix_template(&scale, seed);
            eprintln!(
                "scenario:        replay {} ({} op(s), {} node(s), seed {seed}, window {}+{})",
                trace.name,
                trace.ops.len(),
                trace.nodes,
                scale.warmup,
                scale.duration
            );
            run_scenario_trace(&args, template, trace, faults)
        }
        other => Err(format!("scenario: expected run|record|replay, got {other:?}")),
    }
}

/// Shared back half of `scenario run` and `scenario replay`: pick the
/// frontend, attach faults, drive the scenario runner and report.
fn run_scenario_trace(
    args: &Args,
    mut template: seqio_node::Experiment,
    trace: seqio_scenario::ScenarioTrace,
    faults: Option<seqio_simcore::FaultPlan>,
) -> Result<(), String> {
    if args.switch("direct") && args.switch("adaptive") {
        return Err("--direct runs without the scheduler; it cannot be --adaptive".into());
    }
    template.frontend = if args.switch("direct") {
        seqio_node::Frontend::Direct
    } else {
        seqio_node::Frontend::StreamScheduler(seqio_core::ServerConfig::auto_tune(1 << 30, 8))
    };
    template.faults = faults;
    let disks_per_node = template.shape.total_disks();
    let mut run = seqio_scenario::ScenarioRun::new(template, trace);
    if args.switch("adaptive") {
        run.adaptive = Some(seqio_scenario::AdaptiveConfig::standard());
    }
    if let Some(j) = args.get("jobs") {
        let j: usize = j.parse().map_err(|_| format!("--jobs: expected an integer, got {j:?}"))?;
        run.jobs = Some(j);
    }
    let outcome = run.run().map_err(|e| e.to_string())?;
    for (i, r) in outcome.nodes.iter().enumerate() {
        println!(
            "node {i}:          {:>9.2} MB/s   {} request(s), {} MiB over {}",
            r.total_throughput_mbs(),
            r.requests_completed,
            r.bytes_delivered >> 20,
            r.window
        );
    }
    println!(
        "total:           {:>9.2} MB/s over {} node(s), {} disk(s) each",
        outcome.total_throughput_mbs(),
        outcome.nodes.len(),
        disks_per_node
    );
    if args.switch("adaptive") {
        println!("retunes:         {}", outcome.retunes.len());
        for e in &outcome.retunes {
            println!("  node {} t={} {:?}", e.node, e.at, e.action);
        }
    }
    Ok(())
}

fn cmd_sweep(rest: Vec<String>) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let mut known = EXPERIMENT_FLAGS.to_vec();
    known.extend_from_slice(COMMON_FLAGS);
    known.extend_from_slice(&["param", "values", "progress"]);
    let unknown = args.unknown_flags(&known);
    if !unknown.is_empty() {
        return Err(format!("unknown flag(s): {}", unknown.join(", ")));
    }
    if common_output_requested(&args) {
        return Err(
            "--trace-out/--metrics-out: sweeps print a table; record one point with `run`".into()
        );
    }
    let common = CommonArgs::from_args(&args)?;
    let param = args.get("param").ok_or("sweep needs --param streams|readahead|request")?;
    let values: Vec<&str> = args
        .get("values")
        .ok_or("sweep needs --values a,b,c")?
        .split(',')
        .map(str::trim)
        .filter(|v| !v.is_empty())
        .collect();
    if values.is_empty() {
        return Err("--values: empty list".into());
    }
    if !matches!(param, "streams" | "readahead" | "request") {
        return Err(format!("--param: expected streams|readahead|request, got {param:?}"));
    }

    // Build the whole grid up front, then run it on the worker pool.
    let mut specs: Vec<seqio_node::Experiment> = Vec::new();
    for v in &values {
        // Re-parse with the swept flag overridden.
        let mut items: Vec<String> = Vec::new();
        items.push(format!("--{param}={v}"));
        // Carry every other original flag through; the shared flags are
        // already parsed in `common` and apply to every point.
        for k in EXPERIMENT_FLAGS {
            if *k == param {
                continue;
            }
            if let Some(val) = args.get(k) {
                items.push(format!("--{k}={val}"));
            } else if args.switch(k) {
                items.push(format!("--{k}"));
            }
        }
        let sub = Args::parse(items)?;
        specs.push(experiment_from(&sub, &common)?);
    }

    let mut sweep = seqio_node::Sweep::builder().points(specs).progress(args.switch("progress"));
    if let Some(j) = common.jobs {
        sweep = sweep.jobs(j);
    }
    let report = sweep.run();

    println!("{:>12} {:>12} {:>12} {:>10} {:>10}", param, "MB/s", "MB/s/disk", "mean ms", "p99 ms");
    for (v, o) in values.iter().zip(report.outcomes()) {
        let disks = o.spec.shape.total_disks();
        let r = &o.result;
        println!(
            "{:>12} {:>12.2} {:>12.2} {:>10.2} {:>10.2}",
            v,
            r.total_throughput_mbs(),
            r.per_disk_throughput_mbs(disks),
            r.mean_response_ms(),
            r.p99_response_ms()
        );
    }
    eprintln!(
        "sweep: {} point(s) on {} worker(s) in {:.2}s",
        report.len(),
        report.jobs,
        report.wall.as_secs_f64()
    );
    Ok(())
}

fn print_help() {
    println!(
        "\
seqio — storage-node simulator for large numbers of sequential streams
(reproduction of Panagiotakis/Flouris/Bilas, ICDCS 2009)

USAGE:
  seqio run    [flags]
  seqio sweep  --param streams|readahead|request --values a,b,c [--jobs N] [flags]
  seqio cluster run --nodes K --shard POLICY [flags]   # multi-node cluster
  seqio client run --nodes K --rate R [flags]  # open-loop sessions + link SLO
  seqio replay --trace-in FILE [flags]     # open-loop trace replay
  seqio report --spans FILE [--phases] [--slo]  # per-phase latency breakdown
  seqio report --trace FILE [--correlate] [--attribute P] [--burn]
                                           # correlated session traces: cross-
                                           # node summary, tail attribution,
                                           # SLO burn-rate alerts
  seqio scenario run    --kind K [flags]   # generate + run a named scenario
  seqio scenario record --kind K --out FILE  # write its trace, don't run
  seqio scenario replay --trace FILE [flags] # re-run a recorded trace
  seqio info

EXPERIMENT FLAGS (run, sweep, cluster run, replay):
  --shape single|eight|sixty     node layout             [single]
  --streams N                    streams per disk        [10]
  --request SIZE                 client request size     [64K]
  --frontend direct|stream|linux request path            [direct]
  --readahead SIZE               scheduler R             [1M]
  --d N --n N --memory SIZE      explicit D/N/M (frontend=stream)
  --scheduler noop|deadline|cfq|anticipatory   (frontend=linux)
  --pattern seq|near|random      stream access pattern   [seq]
  --placement uniform|interval:SIZE                      [uniform]
  --writes                       issue writes instead of reads
  --requests N                   requests per stream     [open-ended]
  --warmup DUR --duration DUR    measurement window      [3s / 5s]
  --seed N                       deterministic seed      [1]
  --local-costs                  local (xdd-style) client cost model
  --trace FILE                   write a per-request CSV trace

SHARED FLAGS (one grammar across run, sweep and cluster run):
  --faults SPEC                  deterministic fault plan; `;`-separated:
                                   straggler:disk=D,factor=F[,from=DUR][,for=DUR]
                                   errors:disk=D,rate=P
                                   badregion:disk=D,start=LBA,blocks=N[,penalty=DUR]
                                   retry:[max=N][,backoff=DUR][,timeout=DUR]
                                 (whole run; on a cluster, lands on --fault-node)
  --trace-out FILE               record request-lifecycle spans
                                 (.jsonl for JSON lines, CSV otherwise)
  --metrics-out FILE             record a metric time series CSV
  --sample-interval DUR          metric sampling period  [10ms]
  --jobs N                       worker threads          [SEQIO_JOBS, then #cpus]

FLAGS (sweep only):
  --param streams|readahead|request --values a,b,c  the swept knob
  --progress                     per-point progress lines on stderr

FLAGS (cluster run):
  --nodes K                      storage nodes             [1]
  --shard identity|hash|range|straggler-aware              [hash]
  --fault-node I                 node receiving --faults   [0]
  --base-seed N                  derive per-node seeds from (N, node)
  --rebalance DUR                migrate live streams off degraded nodes,
                                 checking health every DUR of sim time
  (experiment flags above describe each node's template; --faults applies
   to --fault-node only and drives straggler-aware health)

FLAGS (scenario run / record / replay):
  --kind K                       steady|video|backup|mixed|churn|
                                 seek-restart|degraded        (run, record)
  --scale quick|full             matrix scale (window + population) [quick]
  --nodes N                      nodes the generator addresses      [1]
  --seed N                       scenario RNG seed                  [11]
  --direct                       run without the stream scheduler
  --adaptive                     enable the epoch adaptive tuner
  --jobs N                       worker threads for multi-node traces
  --out FILE                     also write the generated trace text
  --trace FILE                   recorded trace to replay     (replay)
  --faults SPEC                  fault plan for the replay    (replay;
                                 `run` injects the generator's own plan,
                                 e.g. the degraded straggler — pass it
                                 here to reproduce such a run exactly)

FLAGS (client run):
  --nodes K --shard POLICY       cluster under the client tier  [1 / hash]
  --rate R                       session arrivals per second    [100]
  --burst PERIOD,DUTY,FACTOR     bursty rate modulation
  --diurnal PERIOD,DEPTH         sinusoidal rate modulation
  --titles N --zipf S            catalogue size and popularity  [1024 / 0.8]
  --session-requests N           sequential requests per session  [4]
  --lifetime DUR                 abandon sessions older than DUR
  --link RATE                    shared client link, bytes/s (e.g. 125M)
                                 [unconstrained]
  --closed-loop                  wrap the plain cluster run instead
                                 (bit-identical results, SLO added)
  --correlate-out FILE           write correlated session traces (JSONL):
                                 client arrivals joined with node spans and
                                 migrations; feed to `report --trace`
  (experiment flags shape each node; --warmup + --duration bound arrivals)

EXAMPLES:
  seqio run --streams 100 --frontend stream --readahead 4M
  seqio run --shape eight --frontend stream --d 8 --n 128 --readahead 512K
  seqio sweep --param streams --values 1,10,30,100 --frontend direct
  seqio run --frontend linux --scheduler anticipatory --request 4K --local-costs
  seqio run --streams 100 --frontend stream --faults straggler:disk=0,factor=4
  seqio run --streams 50 --frontend stream --trace-out spans.csv --metrics-out m.csv
  seqio report --spans spans.csv --phases
  seqio cluster run --nodes 4 --shard straggler-aware --streams 100 \\
        --frontend stream --requests 16 --warmup 0s --duration 60s \\
        --faults straggler:disk=0,factor=4 --fault-node 1 --base-seed 7
  seqio cluster run --nodes 2 --shard hash --streams 16 --requests 16 \\
        --warmup 0s --duration 300s --faults straggler:disk=0,factor=8,from=2s \\
        --fault-node 1 --base-seed 7 --rebalance 250ms
  seqio client run --nodes 4 --rate 400 --titles 4096 --zipf 0.8 \\
        --link 250M --lifetime 30s --warmup 0s --duration 60s --base-seed 7
  seqio client run --nodes 2 --rate 200 --burst 10s,0.3,3 --link 125M \\
        --warmup 0s --duration 30s --trace-out spans.csv
  seqio report --spans spans.csv --slo
  seqio client run --nodes 2 --rate 200 --link 125M --warmup 0s \\
        --duration 30s --correlate-out traces.jsonl
  seqio report --trace traces.jsonl --correlate --attribute p99.9 --burn
  seqio scenario run --kind video --adaptive
  seqio scenario record --kind churn --out churn.trace
  seqio scenario replay --trace churn.trace --adaptive"
    );
}
