//! Calibration constants for the storage-node model.
//!
//! Everything here is derived from the paper's testbed description (2x
//! AMD Opteron 242, 1 GB RAM, Fedora Core 3 / Linux 2.6.11, 1 GbE clients
//! with data excluded from the network path) or from ordinary magnitudes
//! for mid-2000s hardware. Absolute throughputs depend on these values;
//! the *shapes* of the reproduced figures do not (see DESIGN.md §5).

use seqio_simcore::SimDuration;

/// Host-side cost model (server process + network).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Server CPU to accept/classify one client request.
    pub cpu_request: SimDuration,
    /// Server CPU to complete one client request.
    pub cpu_completion: SimDuration,
    /// Fixed server CPU to swap a stream into the dispatch set
    /// (buffer allocation and registration — the paper's host-side
    /// "buffer management" term, visible as Fig. 14's small gain).
    pub swap_fixed: SimDuration,
    /// Additional swap cost per MiB of read-ahead buffer.
    pub swap_per_mib: SimDuration,
    /// One-way network latency for a request/response header (the paper's
    /// harness sends headers only, so there is no per-byte term).
    pub network_oneway: SimDuration,
    /// Client think time before re-issuing after a memory-served response.
    pub hit_turnaround: SimDuration,
    /// Base client wake-up delay after an I/O-served response.
    pub wake_base: SimDuration,
    /// Extra mean wake-up delay per concurrent stream sharing the client
    /// host's CPUs (exponentially distributed). Zero for the paper's
    /// distributed-client experiments; positive for the local `xdd` runs of
    /// Figure 2, where hundreds of reader threads contend for two CPUs.
    pub wake_per_stream: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_request: SimDuration::from_micros(10),
            cpu_completion: SimDuration::from_micros(5),
            swap_fixed: SimDuration::from_micros(200),
            swap_per_mib: SimDuration::from_micros(150),
            network_oneway: SimDuration::from_micros(50),
            hit_turnaround: SimDuration::from_micros(20),
            wake_base: SimDuration::from_micros(100),
            wake_per_stream: SimDuration::ZERO,
        }
    }
}

impl CostModel {
    /// The Figure 2 variant: reader threads run on the storage host itself
    /// (no network) and contend for its two CPUs, so wake-up latency grows
    /// with the thread count.
    pub fn local_xdd() -> Self {
        CostModel {
            wake_per_stream: SimDuration::from_micros(30),
            network_oneway: SimDuration::ZERO,
            hit_turnaround: SimDuration::from_micros(8),
            wake_base: SimDuration::from_micros(60),
            ..Self::default()
        }
    }

    /// Validates the model. All costs may be zero (e.g. the Figure 2 runs
    /// are local, so they zero the network term); the hook exists so future
    /// constraints have a home.
    ///
    /// # Errors
    ///
    /// Currently never fails.
    pub fn validate(&self) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(CostModel::default().validate().is_ok());
    }

    #[test]
    fn local_xdd_adds_contention() {
        let m = CostModel::local_xdd();
        assert!(m.wake_per_stream > SimDuration::ZERO);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn local_xdd_is_networkless() {
        assert_eq!(CostModel::local_xdd().network_oneway, SimDuration::ZERO);
    }
}
