//! # seqio
//!
//! Facade crate for the `seqio` workspace: a reproduction of
//! *"Reducing Disk I/O Performance Sensitivity for Large Numbers of
//! Sequential Streams"* (Panagiotakis, Flouris, Bilas — ICDCS 2009).
//!
//! The workspace implements, from scratch:
//!
//! * a DiskSim-style storage simulator ([`disk`], [`controller`], [`simcore`]);
//! * a Linux-like kernel I/O path with noop/deadline/anticipatory/CFQ
//!   schedulers ([`hostsched`]);
//! * the paper's contribution — a host-level sequential-stream scheduler
//!   with bitmap classification, a bounded dispatch set and a memory-bounded
//!   buffered set ([`core`]);
//! * workload generation ([`workload`]) and a full storage-node simulation
//!   with an experiment runner ([`node`]).
//!
//! # Quick start
//!
//! ```
//! use seqio::node::{Experiment, Frontend, NodeShape};
//!
//! // 30 sequential streams on one disk, serviced through the paper's
//! // stream scheduler with 1 MiB read-ahead.
//! let result = Experiment::builder()
//!     .shape(NodeShape::single_disk())
//!     .streams_per_disk(30)
//!     .request_size(64 * 1024)
//!     .frontend(Frontend::stream_scheduler_with_readahead(1024 * 1024))
//!     .seed(7)
//!     .run();
//! assert!(result.total_throughput_mbs() > 10.0);
//! ```

pub use seqio_controller as controller;
pub use seqio_core as core;
pub use seqio_disk as disk;
pub use seqio_hostsched as hostsched;
pub use seqio_node as node;
pub use seqio_simcore as simcore;
pub use seqio_workload as workload;
