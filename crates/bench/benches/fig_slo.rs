//! End-to-end session SLO vs offered load: open-loop arrivals over a
//! shared fair-share link.
//!
//! No counterpart figure exists in the paper — the paper's experiments
//! are all closed-loop — but this is the curve its streaming-media
//! motivation cares about: hold the cluster and the client link fixed,
//! sweep the session arrival rate, and watch the latency percentiles
//! degrade as first the disks and then the shared link saturate. The
//! p99.9 tail separates from the median long before the mean moves —
//! the usual open-loop saturation signature.

use seqio_bench::{quick_mode, Figure, Series};
use seqio_client::{ArrivalConfig, ClientExperiment, LinkConfig};
use seqio_cluster::SessionSlo;
use seqio_node::Experiment;
use seqio_simcore::units::MIB;
use seqio_simcore::SimDuration;

const BASE_SEED: u64 = 2026;

fn run(rate: f64, horizon_secs: u64) -> SessionSlo {
    let template = Experiment::builder()
        .warmup(SimDuration::ZERO)
        .duration(SimDuration::from_secs(horizon_secs))
        .build();
    ClientExperiment::builder()
        .template(template)
        .nodes(2)
        .base_seed(BASE_SEED)
        .arrivals(ArrivalConfig {
            rate_per_sec: rate,
            requests_per_session: 2,
            titles: 512,
            ..ArrivalConfig::default()
        })
        .link(LinkConfig { capacity_bps: 40.0 * MIB as f64, ..LinkConfig::default() })
        .run()
        .expect("slo figure point")
        .slo
        .expect("sessions completed")
}

fn main() {
    let horizon: u64 = if quick_mode() { 10 } else { 30 };
    let rates: &[f64] =
        if quick_mode() { &[50.0, 200.0, 400.0] } else { &[50.0, 100.0, 200.0, 300.0, 400.0] };

    let mut fig = Figure::new(
        "SLO",
        "Session latency percentiles vs offered load: 2 nodes behind a 40 MiB/s link",
        "Arrival rate (sessions/s)",
        "Session latency (ms)",
    );
    let mut p50 = Series::new("p50");
    let mut p95 = Series::new("p95");
    let mut p99 = Series::new("p99");
    let mut p999 = Series::new("p99.9");
    let mut low_load_p999 = f64::NAN;
    let mut high_load_p999 = f64::NAN;
    for &rate in rates {
        let slo = run(rate, horizon);
        let label = format!("{rate:.0}");
        p50.push(label.clone(), slo.p50_ms);
        p95.push(label.clone(), slo.p95_ms);
        p99.push(label.clone(), slo.p99_ms);
        p999.push(label, slo.p999_ms);
        if rate == rates[0] {
            low_load_p999 = slo.p999_ms;
        }
        if rate == rates[rates.len() - 1] {
            high_load_p999 = slo.p999_ms;
        }
        assert!(
            slo.p50_ms <= slo.p95_ms && slo.p95_ms <= slo.p99_ms && slo.p99_ms <= slo.p999_ms,
            "percentile chain out of order at rate {rate}"
        );
    }
    fig.add(p50);
    fig.add(p95);
    fig.add(p99);
    fig.add(p999);
    fig.report("fig_slo");

    // The saturation signature the figure exists to show: driving the
    // offered load from well under to at/over the link's capacity must
    // stretch the extreme tail by an order of magnitude.
    assert!(
        high_load_p999 >= 10.0 * low_load_p999,
        "p99.9 grew only {low_load_p999:.2} -> {high_load_p999:.2} ms from light to heavy load"
    );
}
