//! Figure grids on top of [`seqio_node::Sweep`].
//!
//! Every figure bench is the same shape: a cartesian product of parameter
//! values, one [`Experiment`] per cell, one or more metrics per result.
//! [`Grid`] captures that shape once — cells are registered under a
//! `(series, x)` address, executed in one parallel [`Sweep`], and read back
//! through [`GridRun`]: [`fill`](GridRun::fill) populates a [`Figure`] with
//! one metric, [`extract`](GridRun::extract) derives further series from
//! the same runs, and [`get`](GridRun::get) addresses a single result.
//!
//! Cells keep the seed set on their spec, so a grid produces the same
//! numbers as the serial loops it replaces, for any worker count.

use std::collections::HashMap;
use std::time::Duration;

use seqio_node::{Experiment, RunResult, Sweep};

use crate::{Figure, Series};

enum CellKind {
    Spec(Box<Experiment>),
    Fixed(f64),
}

struct Cell {
    series: String,
    x: String,
    kind: CellKind,
}

/// An unexecuted figure grid; register cells, then [`run`](Grid::run).
#[derive(Default)]
pub struct Grid {
    cells: Vec<Cell>,
    jobs: Option<usize>,
    base_seed: Option<u64>,
}

impl std::fmt::Debug for Grid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Grid").field("cells", &self.cells.len()).field("jobs", &self.jobs).finish()
    }
}

impl Grid {
    /// Starts an empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one experiment under `(series, x)`. Insertion order
    /// defines series order and, within a series, x order.
    pub fn point(
        mut self,
        series: impl Into<String>,
        x: impl Into<String>,
        spec: Experiment,
    ) -> Self {
        self.cells.push(Cell {
            series: series.into(),
            x: x.into(),
            kind: CellKind::Spec(Box::new(spec)),
        });
        self
    }

    /// Registers a constant cell — a placeholder for configurations that
    /// cannot run (e.g. memory below one buffer), plotted as-is.
    pub fn fixed(mut self, series: impl Into<String>, x: impl Into<String>, y: f64) -> Self {
        self.cells.push(Cell { series: series.into(), x: x.into(), kind: CellKind::Fixed(y) });
        self
    }

    /// Overrides the worker count (default: `SEQIO_JOBS`, then available
    /// parallelism).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Derives per-cell seeds from `(base_seed, cell index)` instead of the
    /// seeds carried by the specs (see [`seqio_node::sweep::derive_seed`]).
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = Some(seed);
        self
    }

    /// Runs every spec cell through one parallel sweep and pairs the
    /// results back with their addresses. Prints a one-line timing summary
    /// to stderr (per-point lines too when `SEQIO_BENCH_PROGRESS=1`).
    pub fn run(self) -> GridRun {
        let progress = std::env::var("SEQIO_BENCH_PROGRESS").map(|v| v == "1").unwrap_or(false);
        let mut b = Sweep::builder().progress(progress);
        if let Some(j) = self.jobs {
            b = b.jobs(j);
        }
        if let Some(s) = self.base_seed {
            b = b.base_seed(s);
        }
        b = b.points(self.cells.iter().filter_map(|c| match &c.kind {
            CellKind::Spec(e) => Some((**e).clone()),
            CellKind::Fixed(_) => None,
        }));
        let report = b.run();
        let (wall, jobs) = (report.wall, report.jobs);
        let cpu = report.cpu_time();
        let ran = report.len();

        let mut results = report.into_results().into_iter();
        let mut fills: HashMap<(String, String), f64> = HashMap::new();
        let cells: Vec<(String, String, Option<RunResult>)> = self
            .cells
            .into_iter()
            .map(|c| {
                let r = match c.kind {
                    CellKind::Spec(_) => Some(results.next().expect("one result per spec cell")),
                    CellKind::Fixed(y) => {
                        fills.insert((c.series.clone(), c.x.clone()), y);
                        None
                    }
                };
                (c.series, c.x, r)
            })
            .collect();

        let mut run = GridRun { cells, fills, wall, jobs, cpu };
        run.note_timing(ran);
        run
    }
}

/// The executed grid: results addressable by `(series, x)`.
#[derive(Debug)]
pub struct GridRun {
    cells: Vec<(String, String, Option<RunResult>)>,
    fills: HashMap<(String, String), f64>,
    /// Wall-clock time of the sweep.
    pub wall: Duration,
    /// Worker threads used.
    pub jobs: usize,
    /// Summed per-point run time (wall × realized speedup).
    pub cpu: Duration,
}

impl GridRun {
    fn note_timing(&mut self, ran: usize) {
        if ran > 0 {
            eprintln!(
                "grid: {ran} point(s) on {} worker(s) in {:.2}s (cpu {:.2}s, {:.2}s/point)",
                self.jobs,
                self.wall.as_secs_f64(),
                self.cpu.as_secs_f64(),
                self.cpu.as_secs_f64() / ran as f64
            );
        }
    }

    /// The result at `(series, x)`; `None` for fixed cells or absent
    /// addresses.
    pub fn get(&self, series: &str, x: &str) -> Option<&RunResult> {
        self.cells.iter().find(|(s, cx, _)| s == series && cx == x).and_then(|(_, _, r)| r.as_ref())
    }

    /// Iterates one series' cells in insertion order as
    /// `(x, Some(result) | None-for-fixed)`.
    pub fn series<'a>(
        &'a self,
        label: &'a str,
    ) -> impl Iterator<Item = (&'a str, Option<&'a RunResult>)> + 'a {
        self.cells
            .iter()
            .filter(move |(s, _, _)| s == label)
            .map(|(_, x, r)| (x.as_str(), r.as_ref()))
    }

    /// Builds a new series from an existing one's runs under a different
    /// metric — for figures that plot several metrics of the same sweep.
    /// Fixed cells keep their registered value.
    pub fn extract(
        &self,
        source: &str,
        label: impl Into<String>,
        metric: impl Fn(&RunResult) -> f64,
    ) -> Series {
        let mut out = Series::new(label);
        for (x, r) in self.series(source) {
            let y = match r {
                Some(r) => metric(r),
                None => self.fixed_value(source, x),
            };
            out.push(x, y);
        }
        out
    }

    /// Adds every registered series to `fig`, in first-insertion order,
    /// applying `metric` to run cells; fixed cells keep their value.
    pub fn fill(&self, fig: &mut Figure, metric: impl Fn(&RunResult) -> f64) {
        let mut order: Vec<&str> = Vec::new();
        for (s, _, _) in &self.cells {
            if !order.contains(&s.as_str()) {
                order.push(s);
            }
        }
        for label in order {
            fig.add(self.extract(label, label, &metric));
        }
    }

    fn fixed_value(&self, series: &str, x: &str) -> f64 {
        self.fills.get(&(series.to_string(), x.to_string())).copied().unwrap_or(f64::NAN)
    }
}

#[cfg(test)]
impl Grid {
    fn points_for_test<I: IntoIterator<Item = (String, String, Experiment)>>(
        mut self,
        items: I,
    ) -> Self {
        for (s, x, e) in items {
            self = self.point(s, x, e);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio_simcore::SimDuration;

    fn quick(streams: usize, seed: u64) -> Experiment {
        Experiment::builder()
            .streams_per_disk(streams)
            .requests_per_stream(8)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(30))
            .seed(seed)
            .build()
    }

    #[test]
    fn fill_preserves_registration_order() {
        let run = Grid::new()
            .point("b", "1", quick(1, 3))
            .point("a", "1", quick(2, 3))
            .point("b", "2", quick(1, 4))
            .run();
        let mut fig = Figure::new("T", "t", "x", "y");
        run.fill(&mut fig, |r| r.requests_completed as f64);
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[0].label, "b");
        assert_eq!(fig.series[1].label, "a");
        assert_eq!(fig.series[0].points.len(), 2);
        assert_eq!(fig.series[0].points[0], ("1".to_string(), 8.0));
        assert_eq!(fig.series[1].points[0], ("1".to_string(), 16.0));
    }

    #[test]
    fn fixed_cells_pass_through_fill() {
        let run = Grid::new().fixed("a", "1", 0.0).point("a", "2", quick(1, 5)).run();
        let mut fig = Figure::new("T", "t", "x", "y");
        run.fill(&mut fig, |r| r.requests_completed as f64);
        assert_eq!(fig.series[0].points[0].1, 0.0);
        assert_eq!(fig.series[0].points[1].1, 8.0);
        assert!(run.get("a", "1").is_none());
        assert!(run.get("a", "2").is_some());
    }

    #[test]
    fn extract_derives_second_metric_from_same_runs() {
        let run = Grid::new().point("tput", "1", quick(2, 6)).run();
        let bytes = run.extract("tput", "bytes", |r| r.bytes_delivered as f64);
        assert_eq!(bytes.label, "bytes");
        assert_eq!(bytes.points[0].1, run.get("tput", "1").unwrap().bytes_delivered as f64);
    }

    #[test]
    fn grid_matches_serial_loop_for_any_worker_count() {
        let serial: Vec<u64> = (1..=4).map(|n| quick(n, 9).run().bytes_delivered).collect();
        for jobs in [1, 4] {
            let run = Grid::new()
                .points_for_test((1..=4).map(|n| ("s".to_string(), n.to_string(), quick(n, 9))))
                .jobs(jobs)
                .run();
            let got: Vec<u64> = run.series("s").map(|(_, r)| r.unwrap().bytes_delivered).collect();
            assert_eq!(got, serial, "jobs={jobs}");
        }
    }
}
