//! Experiment specification and results.

use seqio_controller::ControllerConfig;
use seqio_core::{ServerConfig, ServerMetrics};
use seqio_disk::{bytes_to_blocks, DiskConfig};
use seqio_hostsched::{ReadaheadConfig, SchedKind};
use seqio_simcore::{
    FaultPlan, KernelProfile, LatencyHistogram, MetricSeries, ObsConfig, ProfConfig, SeqioError,
    SimDuration, SimTime,
};
use seqio_workload::Pattern;

use crate::calibration::CostModel;
use crate::system::StorageNode;

/// Physical layout of a storage node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeShape {
    /// Number of controllers.
    pub controllers: usize,
    /// Disks attached to each controller.
    pub disks_per_controller: usize,
    /// Controller template (its `ports` field is overridden to
    /// `disks_per_controller`).
    pub controller: ControllerConfig,
    /// Disk model used for every spindle.
    pub disk: DiskConfig,
}

impl NodeShape {
    /// One controller, one disk — the paper's base configuration.
    pub fn single_disk() -> Self {
        NodeShape {
            controllers: 1,
            disks_per_controller: 1,
            controller: ControllerConfig::single_port(),
            disk: DiskConfig::wd800jd(),
        }
    }

    /// One BC4810 with eight disks — the paper's medium configuration.
    pub fn eight_disk() -> Self {
        NodeShape {
            controllers: 1,
            disks_per_controller: 8,
            controller: ControllerConfig::bc4810(),
            disk: DiskConfig::wd800jd(),
        }
    }

    /// Fifteen controllers x four disks = 60 disks — the paper's large
    /// configuration (Figure 1).
    pub fn sixty_disk() -> Self {
        NodeShape {
            controllers: 15,
            disks_per_controller: 4,
            controller: ControllerConfig { ports: 4, ..ControllerConfig::bc4810() },
            disk: DiskConfig::wd800jd(),
        }
    }

    /// Total spindles.
    pub fn total_disks(&self) -> usize {
        self.controllers * self.disks_per_controller
    }

    /// Validates the shape.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`SeqioError`].
    pub fn validate(&self) -> Result<(), SeqioError> {
        if self.controllers == 0 || self.disks_per_controller == 0 {
            return Err(SeqioError::Shape("need at least one controller and one disk".into()));
        }
        let mut c = self.controller.clone();
        c.ports = self.disks_per_controller;
        c.validate().map_err(SeqioError::component("controller"))?;
        self.disk.validate().map_err(SeqioError::component("disk"))
    }
}

/// Which request path services the clients.
#[derive(Debug, Clone, PartialEq)]
pub enum Frontend {
    /// Requests go straight to the controllers (the baseline of Figures
    /// 1, 4, 5, 6, 7, 8).
    Direct,
    /// The paper's stream scheduler with an explicit configuration.
    StreamScheduler(ServerConfig),
    /// The stream scheduler in the "adequate memory" setup of Figure 10:
    /// `D` = total streams, `N` = 1, `M = D * R`.
    AllDispatched {
        /// Read-ahead size `R` in bytes.
        read_ahead_bytes: u64,
    },
    /// A Linux-like kernel path: page-cache read-ahead plus a block-layer
    /// scheduler (Figure 2).
    Linux {
        /// Block-layer scheduling policy.
        scheduler: SchedKind,
        /// Kernel read-ahead tunables.
        readahead: ReadaheadConfig,
    },
}

impl Frontend {
    /// Convenience constructor matching the facade-crate quick start:
    /// stream scheduling with every stream dispatched at the given `R`.
    pub fn stream_scheduler_with_readahead(read_ahead_bytes: u64) -> Self {
        Frontend::AllDispatched { read_ahead_bytes }
    }
}

/// How streams are laid out on each disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// `disksize / streams` apart (the paper's default).
    Uniform,
    /// Fixed byte interval between stream starts (Figure 5 uses 1 GByte).
    Interval(u64),
}

/// A complete experiment description (builder-constructed).
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Node layout.
    pub shape: NodeShape,
    /// Concurrent sequential streams per disk.
    pub streams_per_disk: usize,
    /// Explicit per-disk stream counts (one entry per disk, in global disk
    /// order), overriding the uniform `streams_per_disk` layout. Disks may
    /// carry different counts — even zero — as long as at least one stream
    /// exists. `None` (the default) keeps the uniform layout and is
    /// bit-identical to builds without this field. Used by the cluster
    /// layer, where a router hands each node an uneven share of streams.
    pub stream_counts: Option<Vec<usize>>,
    /// Client request size in bytes.
    pub request_bytes: u64,
    /// Request path.
    pub frontend: Frontend,
    /// Stream placement.
    pub placement: Placement,
    /// Per-stream access pattern (sequential, near-sequential or random).
    pub pattern: Pattern,
    /// Issue writes instead of reads (writes always bypass staging).
    pub writes: bool,
    /// Requests per stream (`None` = open-ended until the clock stops).
    pub requests_per_stream: Option<u64>,
    /// Open-session mode: the node may start with zero streams and adopt
    /// sessions mid-run through the stream-injection surface (the client
    /// front-end tier drives this). Leaves every closed-loop code path
    /// untouched — a `false` value is bit-identical to builds without the
    /// field. Incompatible with replay and the `AllDispatched` frontend
    /// (which sizes its dispatch set from the static stream count).
    pub open_sessions: bool,
    /// Record a [`TraceRecord`](crate::TraceRecord) per completed request
    /// inside the measured window.
    pub record_trace: bool,
    /// Replay this trace instead of generating a workload: requests arrive
    /// open-loop at their recorded send times (`streams_per_disk`,
    /// `pattern`, `placement` and `requests_per_stream` are ignored).
    pub replay: Option<Vec<crate::TraceRecord>>,
    /// Cost model.
    pub costs: CostModel,
    /// Warm-up excluded from measurement.
    pub warmup: SimDuration,
    /// Measured window.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Deterministic fault schedule (`None` = healthy run; faults are
    /// strictly opt-in and a missing or empty plan leaves every output
    /// bit-identical to a build without fault support).
    pub faults: Option<FaultPlan>,
    /// Observability configuration (`None` = nothing recorded; like
    /// faults, observability is strictly opt-in and never perturbs the
    /// simulation — results stay bit-identical with it on or off).
    pub obs: Option<ObsConfig>,
    /// Kernel self-profiling configuration (`None` = no accounting; like
    /// observability, profiling is strictly opt-in, only *reads* the host
    /// clock around event dispatch, and leaves every simulation output
    /// bit-identical).
    pub prof: Option<ProfConfig>,
}

impl Experiment {
    /// Starts a builder with the paper's defaults: single disk, 10 streams,
    /// 64 KiB requests, direct path, uniform placement, open-ended streams,
    /// 2 s warm-up + 6 s measurement.
    ///
    /// Note: new call sites should prefer `seqio_cluster::Scenario`, the
    /// unified construction surface for single-node *and* cluster
    /// studies — it shares this builder's knobs, validates everything at
    /// build time as a typed error, and a 1-node scenario is
    /// bit-identical to running the `Experiment` directly. This builder
    /// remains supported for code driving the node layer on its own
    /// (sweep grids, trace replay).
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder {
            spec: Experiment {
                shape: NodeShape::single_disk(),
                streams_per_disk: 10,
                stream_counts: None,
                request_bytes: 64 * 1024,
                frontend: Frontend::Direct,
                placement: Placement::Uniform,
                pattern: Pattern::Sequential,
                writes: false,
                requests_per_stream: None,
                open_sessions: false,
                record_trace: false,
                replay: None,
                costs: CostModel::default(),
                warmup: SimDuration::from_secs(2),
                duration: SimDuration::from_secs(6),
                seed: 1,
                faults: None,
                obs: None,
                prof: None,
            },
        }
    }

    /// Total streams across the node.
    pub fn total_streams(&self) -> usize {
        match &self.stream_counts {
            Some(counts) => counts.iter().sum(),
            None => self.streams_per_disk * self.shape.total_disks(),
        }
    }

    /// Streams on each disk, in global disk order: the explicit
    /// [`stream_counts`](Experiment::stream_counts) when set, else
    /// `streams_per_disk` everywhere.
    pub fn per_disk_streams(&self) -> Vec<usize> {
        match &self.stream_counts {
            Some(counts) => counts.clone(),
            None => vec![self.streams_per_disk; self.shape.total_disks()],
        }
    }

    /// Request size in blocks.
    pub fn request_blocks(&self) -> u64 {
        bytes_to_blocks(self.request_bytes)
    }

    /// Validates the full specification.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`SeqioError`].
    pub fn validate(&self) -> Result<(), SeqioError> {
        self.shape.validate()?;
        self.costs.validate().map_err(SeqioError::component("cost model"))?;
        if self.streams_per_disk == 0 && !self.open_sessions {
            return Err(SeqioError::Experiment("need at least one stream per disk".into()));
        }
        if let Some(counts) = &self.stream_counts {
            if counts.len() != self.shape.total_disks() {
                return Err(SeqioError::Experiment(format!(
                    "stream_counts names {} disks but the node has {}",
                    counts.len(),
                    self.shape.total_disks()
                )));
            }
            if counts.iter().sum::<usize>() == 0 && !self.open_sessions {
                return Err(SeqioError::Experiment(
                    "stream_counts must place at least one stream".into(),
                ));
            }
        }
        if self.open_sessions {
            if self.replay.is_some() {
                return Err(SeqioError::Experiment(
                    "open-session mode is incompatible with trace replay".into(),
                ));
            }
            if matches!(self.frontend, Frontend::AllDispatched { .. }) {
                return Err(SeqioError::Experiment(
                    "open-session mode cannot size an AllDispatched frontend \
                     (its dispatch set derives from the static stream count); \
                     use an explicit StreamScheduler configuration"
                        .into(),
                ));
            }
        }
        if self.request_bytes == 0 {
            return Err(SeqioError::Experiment("request size must be positive".into()));
        }
        if self.duration == SimDuration::ZERO {
            return Err(SeqioError::Experiment("measurement window must be positive".into()));
        }
        if let Frontend::StreamScheduler(cfg) = &self.frontend {
            cfg.validate()?;
        }
        if let Frontend::Linux { readahead, .. } = &self.frontend {
            readahead.validate().map_err(SeqioError::component("read-ahead"))?;
            if self.writes {
                return Err(SeqioError::Experiment(
                    "the Linux front end models a read path only".into(),
                ));
            }
        }
        if let Some(t) = &self.replay {
            if t.is_empty() {
                return Err(SeqioError::Experiment("replay trace is empty".into()));
            }
        }
        if let Some(obs) = &self.obs {
            obs.validate()?;
        }
        if let Some(plan) = &self.faults {
            plan.validate()?;
            let disks = self.shape.total_disks();
            if let Some(d) = plan.max_disk() {
                if d >= disks {
                    return Err(SeqioError::Experiment(format!(
                        "fault plan names disk {d} but the node has only {disks} disks"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Attaches an observability configuration to an already-built
    /// experiment (equivalent to [`ExperimentBuilder::observe`]). Recording
    /// is strictly opt-in and never changes simulation outputs.
    pub fn observe(mut self, cfg: ObsConfig) -> Self {
        self.obs = Some(cfg);
        self
    }

    /// Attaches a kernel self-profiling configuration to an already-built
    /// experiment (equivalent to [`ExperimentBuilder::profile`]).
    /// Profiling is strictly opt-in and never changes simulation outputs.
    pub fn profile(mut self, cfg: ProfConfig) -> Self {
        self.prof = Some(cfg);
        self
    }

    /// Runs the experiment to completion.
    ///
    /// # Panics
    ///
    /// Panics if the specification is invalid.
    pub fn run(&self) -> RunResult {
        match run_node(self) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Validates and runs one storage-node simulation — the non-panicking
/// entry point embedders (the cluster layer, custom harnesses) build on.
/// [`Experiment::run`] is a thin panicking wrapper over this.
///
/// # Errors
///
/// Returns the first violated constraint of the specification.
pub fn run_node(spec: &Experiment) -> Result<RunResult, SeqioError> {
    spec.validate()?;
    Ok(StorageNode::new(spec.clone()).run())
}

/// Builder for [`Experiment`].
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    spec: Experiment,
}

impl ExperimentBuilder {
    /// Sets the node layout.
    pub fn shape(mut self, shape: NodeShape) -> Self {
        self.spec.shape = shape;
        self
    }

    /// Sets streams per disk.
    pub fn streams_per_disk(mut self, n: usize) -> Self {
        self.spec.streams_per_disk = n;
        self
    }

    /// Overrides the uniform layout with explicit per-disk stream counts
    /// (one entry per disk, in global disk order; entries may be zero).
    pub fn stream_counts(mut self, counts: Vec<usize>) -> Self {
        self.spec.stream_counts = Some(counts);
        self
    }

    /// Sets the client request size in bytes.
    pub fn request_size(mut self, bytes: u64) -> Self {
        self.spec.request_bytes = bytes;
        self
    }

    /// Sets the request path.
    pub fn frontend(mut self, f: Frontend) -> Self {
        self.spec.frontend = f;
        self
    }

    /// Sets the stream placement policy.
    pub fn placement(mut self, p: Placement) -> Self {
        self.spec.placement = p;
        self
    }

    /// Sets the per-stream access pattern.
    pub fn pattern(mut self, p: Pattern) -> Self {
        self.spec.pattern = p;
        self
    }

    /// Switches the workload to writes.
    pub fn writes(mut self, w: bool) -> Self {
        self.spec.writes = w;
        self
    }

    /// Enables per-request trace capture.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.spec.record_trace = on;
        self
    }

    /// Replays a previously captured trace (open-loop).
    pub fn replay(mut self, trace: Vec<crate::TraceRecord>) -> Self {
        self.spec.replay = Some(trace);
        self
    }

    /// Limits each stream to `n` requests (default: open-ended).
    pub fn requests_per_stream(mut self, n: u64) -> Self {
        self.spec.requests_per_stream = Some(n);
        self
    }

    /// Enables open-session mode: the node may start with zero streams
    /// and adopt sessions mid-run via stream injection (see
    /// [`Experiment::open_sessions`]).
    pub fn open_sessions(mut self, on: bool) -> Self {
        self.spec.open_sessions = on;
        self
    }

    /// Replaces the cost model.
    pub fn costs(mut self, c: CostModel) -> Self {
        self.spec.costs = c;
        self
    }

    /// Sets the warm-up period.
    pub fn warmup(mut self, d: SimDuration) -> Self {
        self.spec.warmup = d;
        self
    }

    /// Sets the measured window length.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.spec.duration = d;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.spec.seed = s;
        self
    }

    /// Installs a deterministic fault schedule for the run.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.spec.faults = Some(plan);
        self
    }

    /// Enables the observability layer (lifecycle spans and/or metric
    /// sampling) for the run. Strictly opt-in: a run with any
    /// [`ObsConfig`] produces results bit-identical to a run without one.
    pub fn observe(mut self, cfg: ObsConfig) -> Self {
        self.spec.obs = Some(cfg);
        self
    }

    /// Enables kernel self-profiling (per-event-class count/duration
    /// accounting in the dispatch loop, plus calendar-queue shape
    /// statistics). Strictly opt-in: a profiled run produces simulation
    /// results bit-identical to an unprofiled one; only the exported
    /// [`KernelProfile`] (wall-clock figures included) differs run to run.
    pub fn profile(mut self, cfg: ProfConfig) -> Self {
        self.spec.prof = Some(cfg);
        self
    }

    /// Finalizes the specification without running it.
    pub fn build(self) -> Experiment {
        self.spec
    }

    /// Builds and runs in one step.
    pub fn run(self) -> RunResult {
        self.spec.run()
    }
}

/// Measured outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-stream throughput in MBytes/s over the measured window.
    pub per_stream_mbs: Vec<f64>,
    /// Client-side response-time distribution (measured window only).
    pub response: LatencyHistogram,
    /// Bytes delivered inside the window.
    pub bytes_delivered: u64,
    /// Bytes each stream delivered inside the window (the exact integer
    /// numerators behind `per_stream_mbs`; the cluster layer sums these
    /// across nodes when a stream migrates mid-run).
    pub per_stream_bytes: Vec<u64>,
    /// When each stream's final response reached the client — `Some` only
    /// for streams that exhausted a finite request budget during the run.
    /// The client front-end tier reads these instants to compute
    /// per-session end-to-end latency.
    pub stream_done_at: Vec<Option<SimTime>>,
    /// Length of the realized measurement window.
    pub window: SimDuration,
    /// Stream-scheduler counters, when that frontend was used.
    pub server_metrics: Option<ServerMetrics>,
    /// Per-disk seek counts (for diagnostics).
    pub disk_seeks: Vec<u64>,
    /// Per-disk mechanism busy time (for diagnostics).
    pub disk_busy: Vec<SimDuration>,
    /// Per-disk media operations (for diagnostics).
    pub disk_ops: Vec<u64>,
    /// Per-disk transient read errors injected by the fault plan (all
    /// zero on healthy runs).
    pub disk_read_errors: Vec<u64>,
    /// Per-disk controller retries of errored fetches.
    pub disk_retries: Vec<u64>,
    /// Per-disk requests whose service time exceeded the configured
    /// per-request deadline.
    pub disk_timeouts: Vec<u64>,
    /// Controller prefetched bytes reclaimed before use (summed).
    pub ctrl_wasted_bytes: u64,
    /// Bytes the controllers pulled off the disks (summed; compare with
    /// `bytes_delivered` to see prefetch overshoot).
    pub ctrl_bytes_from_disks: u64,
    /// Total client requests completed inside the window.
    pub requests_completed: u64,
    /// Discrete events scheduled on the simulation kernel over the whole
    /// run (warm-up included) — the numerator for events/sec.
    pub events_simulated: u64,
    /// Per-request records, when tracing was enabled.
    pub trace: Option<Vec<crate::TraceRecord>>,
    /// Phase-stamped lifecycle spans, when span recording was enabled
    /// (one per request completed inside the measured window).
    pub spans: Option<Vec<crate::SpanRecord>>,
    /// Metric time series, when periodic sampling was enabled.
    pub metrics: Option<MetricSeries>,
    /// Kernel self-profile, when profiling was enabled. Event-class
    /// counts are deterministic; wall-clock nanoseconds are host
    /// measurements and vary run to run.
    pub prof: Option<KernelProfile>,
}

impl RunResult {
    /// System throughput: the sum of per-stream throughputs, exactly as the
    /// paper computes it.
    pub fn total_throughput_mbs(&self) -> f64 {
        self.per_stream_mbs.iter().sum()
    }

    /// Mean client-side response time in milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        self.response.mean().as_millis_f64()
    }

    /// Median client-side response time in milliseconds (0 if unmeasured).
    pub fn p50_response_ms(&self) -> f64 {
        self.response.quantile(0.5).map(|d| d.as_millis_f64()).unwrap_or(0.0)
    }

    /// 99th-percentile client-side response time in milliseconds.
    pub fn p99_response_ms(&self) -> f64 {
        self.response.quantile(0.99).map(|d| d.as_millis_f64()).unwrap_or(0.0)
    }

    /// Throughput per disk, assuming streams were spread evenly.
    pub fn per_disk_throughput_mbs(&self, disks: usize) -> f64 {
        self.total_throughput_mbs() / disks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_valid() {
        for s in [NodeShape::single_disk(), NodeShape::eight_disk(), NodeShape::sixty_disk()] {
            assert!(s.validate().is_ok(), "{s:?}");
        }
        assert_eq!(NodeShape::sixty_disk().total_disks(), 60);
    }

    #[test]
    fn builder_defaults_validate() {
        let e = Experiment::builder().build();
        assert!(e.validate().is_ok());
        assert_eq!(e.total_streams(), 10);
        assert_eq!(e.request_blocks(), 128);
    }

    #[test]
    fn builder_setters_apply() {
        let e = Experiment::builder()
            .shape(NodeShape::eight_disk())
            .streams_per_disk(30)
            .request_size(128 * 1024)
            .frontend(Frontend::stream_scheduler_with_readahead(1024 * 1024))
            .placement(Placement::Interval(1 << 30))
            .requests_per_stream(100)
            .warmup(SimDuration::from_millis(100))
            .duration(SimDuration::from_secs(1))
            .seed(42)
            .build();
        assert_eq!(e.total_streams(), 240);
        assert!(
            matches!(e.frontend, Frontend::AllDispatched { read_ahead_bytes } if read_ahead_bytes == 1 << 20)
        );
        assert!(e.validate().is_ok());
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut e = Experiment::builder().build();
        e.streams_per_disk = 0;
        assert!(e.validate().is_err());
        let mut e = Experiment::builder().build();
        e.request_bytes = 0;
        assert!(e.validate().is_err());
        let mut e = Experiment::builder().build();
        e.duration = SimDuration::ZERO;
        assert!(e.validate().is_err());
    }

    #[test]
    fn fault_plans_are_validated_against_the_shape() {
        let plan = FaultPlan::new().straggler(0, 4.0, SimDuration::ZERO, None);
        let e = Experiment::builder().faults(plan.clone()).build();
        assert!(e.validate().is_ok());

        // Disk 3 does not exist on a single-disk node.
        let e = Experiment::builder().faults(FaultPlan::new().read_errors(3, 0.01)).build();
        assert!(e.validate().is_err());

        // Internally inconsistent plans are rejected too.
        let e = Experiment::builder()
            .faults(FaultPlan::new().straggler(0, 0.5, SimDuration::ZERO, None))
            .build();
        assert!(e.validate().is_err());
    }
}
