//! Byte-size constants and formatting helpers shared across the workspace.

/// One kibibyte (1024 bytes).
pub const KIB: u64 = 1024;
/// One mebibyte (1024 KiB).
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte (1024 MiB).
pub const GIB: u64 = 1024 * MIB;

/// Formats a byte count with a binary unit suffix ("64K", "8M", "1.5G").
///
/// Intended for figure legends, so it mirrors the paper's compact labels.
///
/// # Examples
///
/// ```
/// use seqio_simcore::units::{format_bytes, MIB};
///
/// assert_eq!(format_bytes(64 * 1024), "64K");
/// assert_eq!(format_bytes(8 * MIB), "8M");
/// assert_eq!(format_bytes(1536 * MIB), "1.5G");
/// ```
pub fn format_bytes(n: u64) -> String {
    fn fmt(v: f64, suffix: &str) -> String {
        if (v - v.round()).abs() < 1e-9 {
            format!("{}{}", v.round() as u64, suffix)
        } else {
            format!("{v:.1}{suffix}")
        }
    }
    if n >= GIB {
        fmt(n as f64 / GIB as f64, "G")
    } else if n >= MIB {
        fmt(n as f64 / MIB as f64, "M")
    } else if n >= KIB {
        fmt(n as f64 / KIB as f64, "K")
    } else {
        format!("{n}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_relate() {
        assert_eq!(MIB, 1024 * KIB);
        assert_eq!(GIB, 1024 * MIB);
    }

    #[test]
    fn formats_round_and_fractional() {
        assert_eq!(format_bytes(0), "0B");
        assert_eq!(format_bytes(512), "512B");
        assert_eq!(format_bytes(KIB), "1K");
        assert_eq!(format_bytes(128 * KIB), "128K");
        assert_eq!(format_bytes(2 * MIB + 512 * KIB), "2.5M");
        assert_eq!(format_bytes(GIB), "1G");
    }
}
