//! Multi-zone disk geometry.
//!
//! Modern disks record more sectors on outer tracks than inner ones
//! (zoned bit recording), so the sustained media rate falls from the outside
//! of the platter to the inside. [`Geometry`] models the disk as a sequence
//! of zones, each with a fixed sectors-per-track count, and provides the
//! LBA → cylinder mapping and transfer-time computation the mechanical model
//! needs.

use seqio_simcore::{SimDuration, SimTime};

use crate::request::{Lba, BLOCK_SIZE};

/// Parameters from which a [`Geometry`] is built.
#[derive(Debug, Clone, PartialEq)]
pub struct GeometryConfig {
    /// Approximate total capacity in bytes (the built geometry rounds to
    /// whole cylinders; see [`Geometry::capacity_bytes`] for the exact value).
    pub capacity_bytes: u64,
    /// Number of read/write heads (recording surfaces).
    pub heads: u32,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Number of recording zones.
    pub zones: u32,
    /// Media rate of the outermost zone, bytes/second.
    pub outer_rate: u64,
    /// Media rate of the innermost zone, bytes/second.
    pub inner_rate: u64,
}

impl GeometryConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_bytes == 0 {
            return Err("capacity must be positive".into());
        }
        if self.heads == 0 {
            return Err("head count must be positive".into());
        }
        if self.rpm == 0 {
            return Err("rpm must be positive".into());
        }
        if self.zones == 0 {
            return Err("zone count must be positive".into());
        }
        if self.inner_rate == 0 || self.outer_rate < self.inner_rate {
            return Err("rates must satisfy 0 < inner_rate <= outer_rate".into());
        }
        Ok(())
    }
}

/// One recording zone: a run of cylinders sharing a sectors-per-track count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zone {
    /// First block of the zone.
    pub first_block: Lba,
    /// Number of blocks in the zone.
    pub blocks: u64,
    /// First cylinder of the zone.
    pub first_cylinder: u64,
    /// Number of cylinders in the zone.
    pub cylinders: u64,
    /// Sectors (512-byte blocks) per track in this zone.
    pub sectors_per_track: u64,
}

impl Zone {
    /// One past the last block of the zone.
    pub fn end_block(&self) -> Lba {
        self.first_block + self.blocks
    }
}

/// A fully-built disk geometry.
#[derive(Debug, Clone)]
pub struct Geometry {
    zones: Vec<Zone>,
    heads: u64,
    rotation: SimDuration,
    total_blocks: u64,
    total_cylinders: u64,
    /// Settle time when the head moves to the next track of the same zone
    /// while streaming (charged once per track crossed).
    track_switch: SimDuration,
}

impl Geometry {
    /// Builds a geometry from a configuration.
    ///
    /// Zones get equal shares of the capacity; sectors-per-track interpolate
    /// linearly from `outer_rate` down to `inner_rate`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`GeometryConfig::validate`]).
    pub fn new(cfg: &GeometryConfig, track_switch: SimDuration) -> Self {
        cfg.validate().expect("invalid geometry config");
        let rotation = SimDuration::from_secs_f64(60.0 / cfg.rpm as f64);
        let rot_s = rotation.as_secs_f64();
        let heads = cfg.heads as u64;
        let zone_bytes = cfg.capacity_bytes / cfg.zones as u64;

        let mut zones = Vec::with_capacity(cfg.zones as usize);
        let mut first_block = 0u64;
        let mut first_cylinder = 0u64;
        for z in 0..cfg.zones {
            // Linear interpolation outer -> inner.
            let frac = if cfg.zones == 1 { 0.0 } else { z as f64 / (cfg.zones - 1) as f64 };
            let rate =
                cfg.outer_rate as f64 + frac * (cfg.inner_rate as f64 - cfg.outer_rate as f64);
            let spt = ((rate * rot_s) / BLOCK_SIZE as f64).round().max(1.0) as u64;
            let cyl_blocks = spt * heads;
            let cylinders = (zone_bytes / BLOCK_SIZE).div_ceil(cyl_blocks).max(1);
            let blocks = cylinders * cyl_blocks;
            zones.push(Zone {
                first_block,
                blocks,
                first_cylinder,
                cylinders,
                sectors_per_track: spt,
            });
            first_block += blocks;
            first_cylinder += cylinders;
        }
        Geometry {
            zones,
            heads,
            rotation,
            total_blocks: first_block,
            total_cylinders: first_cylinder,
            track_switch,
        }
    }

    /// Exact usable capacity in bytes (whole cylinders).
    pub fn capacity_bytes(&self) -> u64 {
        self.total_blocks * BLOCK_SIZE
    }

    /// Exact usable capacity in blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Total number of cylinders across all zones.
    pub fn total_cylinders(&self) -> u64 {
        self.total_cylinders
    }

    /// Time for one platter revolution.
    pub fn rotation(&self) -> SimDuration {
        self.rotation
    }

    /// The recording zones, outermost first.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// The zone containing `lba`.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is past the end of the disk.
    pub fn zone_of(&self, lba: Lba) -> &Zone {
        assert!(lba < self.total_blocks, "lba {lba} beyond disk end {}", self.total_blocks);
        let idx = self.zones.partition_point(|z| z.end_block() <= lba);
        &self.zones[idx]
    }

    /// The cylinder containing `lba`.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is past the end of the disk.
    pub fn cylinder_of(&self, lba: Lba) -> u64 {
        let z = self.zone_of(lba);
        z.first_cylinder + (lba - z.first_block) / (z.sectors_per_track * self.heads)
    }

    /// Sustained media rate at `lba`, in bytes/second, accounting for
    /// track-switch overhead.
    pub fn media_rate(&self, lba: Lba) -> f64 {
        let z = self.zone_of(lba);
        let track_bytes = (z.sectors_per_track * BLOCK_SIZE) as f64;
        let track_time = self.rotation.as_secs_f64() + self.track_switch.as_secs_f64();
        track_bytes / track_time
    }

    /// Time to stream `blocks` blocks starting at `lba` off the media
    /// (rotation-rate transfer plus one track-switch per track crossed;
    /// positioning time is *not* included).
    ///
    /// # Panics
    ///
    /// Panics if the transfer runs past the end of the disk.
    pub fn transfer_time(&self, lba: Lba, blocks: u64) -> SimDuration {
        assert!(
            lba + blocks <= self.total_blocks,
            "transfer [{lba}, {}) beyond disk end {}",
            lba + blocks,
            self.total_blocks
        );
        let mut remaining = blocks;
        let mut at = lba;
        let mut total = SimDuration::ZERO;
        while remaining > 0 {
            let z = self.zone_of(at);
            let in_zone = (z.end_block() - at).min(remaining);
            let spt = z.sectors_per_track;
            // Time reading `in_zone` blocks at this zone's linear density.
            let read = self.rotation.mul_f64(in_zone as f64 / spt as f64);
            // Track switches: one per track boundary crossed inside the run.
            let first_track = at / spt;
            let last_track = (at + in_zone - 1) / spt;
            let switches = last_track - first_track;
            total = total + read + self.track_switch * switches;
            at += in_zone;
            remaining -= in_zone;
        }
        total
    }

    /// The instant, within a transfer that began at `start` for the range
    /// `[lba, lba+blocks)`, when the prefix up to `upto` is available.
    ///
    /// # Panics
    ///
    /// Panics if `upto` is outside `(lba, lba + blocks]`.
    pub fn covered_at(&self, start: SimTime, lba: Lba, blocks: u64, upto: Lba) -> SimTime {
        assert!(upto > lba && upto <= lba + blocks, "upto outside transfer range");
        start + self.transfer_time(lba, upto - lba)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use seqio_simcore::units::{GIB, MIB};

    fn small_cfg() -> GeometryConfig {
        GeometryConfig {
            capacity_bytes: 4 * GIB,
            heads: 2,
            rpm: 7200,
            zones: 8,
            outer_rate: 60 * MIB,
            inner_rate: 35 * MIB,
        }
    }

    fn geom() -> Geometry {
        Geometry::new(&small_cfg(), SimDuration::from_micros(800))
    }

    #[test]
    fn capacity_close_to_requested() {
        let g = geom();
        let want = (4 * GIB) as f64;
        let got = g.capacity_bytes() as f64;
        assert!((got - want).abs() / want < 0.01, "capacity {got} vs {want}");
    }

    #[test]
    fn zones_are_contiguous_and_cover_disk() {
        let g = geom();
        let mut next_block = 0;
        let mut next_cyl = 0;
        for z in g.zones() {
            assert_eq!(z.first_block, next_block);
            assert_eq!(z.first_cylinder, next_cyl);
            next_block = z.end_block();
            next_cyl = z.first_cylinder + z.cylinders;
        }
        assert_eq!(next_block, g.total_blocks());
        assert_eq!(next_cyl, g.total_cylinders());
    }

    #[test]
    fn outer_zone_faster_than_inner() {
        let g = geom();
        let outer = g.media_rate(0);
        let inner = g.media_rate(g.total_blocks() - 1);
        assert!(outer > inner, "outer {outer} should exceed inner {inner}");
        // Rates should be near the configured values (track switch shaves a bit).
        assert!(outer > 0.85 * 60.0 * MIB as f64 && outer < 60.5 * MIB as f64);
        assert!(inner > 0.85 * 35.0 * MIB as f64 && inner < 35.5 * MIB as f64);
    }

    #[test]
    fn media_rates_monotonically_nonincreasing() {
        let g = geom();
        let mut last = f64::INFINITY;
        for z in g.zones() {
            let r = g.media_rate(z.first_block);
            assert!(r <= last + 1.0);
            last = r;
        }
    }

    #[test]
    fn cylinder_of_is_monotonic() {
        let g = geom();
        let step = g.total_blocks() / 997;
        let mut last = 0;
        for i in 0..997 {
            let c = g.cylinder_of(i * step);
            assert!(c >= last);
            last = c;
        }
        assert_eq!(g.cylinder_of(0), 0);
        assert_eq!(g.cylinder_of(g.total_blocks() - 1), g.total_cylinders() - 1);
    }

    #[test]
    fn transfer_time_scales_with_length() {
        let g = geom();
        let t1 = g.transfer_time(0, 128);
        let t2 = g.transfer_time(0, 256);
        assert!(t2 > t1);
        // 1 MiB at the outer zone should take roughly 1MiB/60MiBps ≈ 17ms
        // (plus track switches).
        let t = g.transfer_time(0, 2048).as_millis_f64();
        assert!(t > 14.0 && t < 25.0, "1MiB outer transfer took {t}ms");
    }

    #[test]
    fn transfer_time_spans_zones() {
        let g = geom();
        let z0 = &g.zones()[0];
        let boundary = z0.end_block();
        // A transfer straddling a zone boundary equals the sum of its parts.
        let whole = g.transfer_time(boundary - 64, 128);
        let a = g.transfer_time(boundary - 64, 64);
        let b = g.transfer_time(boundary, 64);
        let sum = a + b;
        let diff = whole.as_nanos().abs_diff(sum.as_nanos());
        assert!(diff <= 2, "whole {whole} vs parts {sum}");
    }

    #[test]
    fn covered_at_is_between_start_and_end() {
        let g = geom();
        let start = SimTime::from_nanos(1_000_000);
        let full = start + g.transfer_time(1000, 512);
        let mid = g.covered_at(start, 1000, 512, 1256);
        assert!(mid > start && mid < full);
        assert_eq!(g.covered_at(start, 1000, 512, 1512), full);
    }

    #[test]
    #[should_panic(expected = "beyond disk end")]
    fn transfer_past_end_panics() {
        let g = geom();
        let _ = g.transfer_time(g.total_blocks() - 10, 20);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = small_cfg();
        c.capacity_bytes = 0;
        assert!(c.validate().is_err());
        let mut c = small_cfg();
        c.inner_rate = c.outer_rate + 1;
        assert!(c.validate().is_err());
        let mut c = small_cfg();
        c.zones = 0;
        assert!(c.validate().is_err());
        assert!(small_cfg().validate().is_ok());
    }

    proptest! {
        /// Transfer time is additive up to rounding and at most one
        /// track-switch (a split landing exactly on a track boundary moves
        /// that boundary's switch out of both halves).
        #[test]
        fn prop_transfer_additive(start in 0u64..1_000_000, len in 2u64..4096, cut in 1u64..4095) {
            let g = geom();
            prop_assume!(start + len <= g.total_blocks());
            let cut = cut.min(len - 1);
            let whole = g.transfer_time(start, len).as_nanos();
            let parts = (g.transfer_time(start, cut) + g.transfer_time(start + cut, len - cut)).as_nanos();
            let track_switch = SimDuration::from_micros(800).as_nanos();
            prop_assert!(whole.abs_diff(parts) <= track_switch + 4);
        }

        /// Every valid LBA maps to a valid cylinder.
        #[test]
        fn prop_cylinder_in_range(frac in 0.0f64..1.0) {
            let g = geom();
            let lba = ((g.total_blocks() - 1) as f64 * frac) as u64;
            prop_assert!(g.cylinder_of(lba) < g.total_cylinders());
        }
    }
}
