//! Closed-form throughput estimates.
//!
//! First-order analytic expectations for the disk model, used to sanity
//! check the simulator (and to reason about experiments before running
//! them). The estimator deliberately captures only the dominant terms —
//! positioning amortization and cache reuse — so simulator agreement within
//! a few tens of percent is the bar, not equality.

use seqio_simcore::SimDuration;

use crate::config::DiskConfig;
use crate::geometry::Geometry;
use crate::request::{bytes_to_blocks, BLOCK_SIZE};
use crate::seek::SeekModel;

/// Outcome of an estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputEstimate {
    /// Expected aggregate throughput in MBytes/s.
    pub mbytes_per_sec: f64,
    /// Expected mechanical time per media operation.
    pub per_op: SimDuration,
    /// Bytes delivered to clients per media operation.
    pub delivered_per_op: u64,
}

/// Average media rate across the zones (bytes/second, including track
/// switches).
pub fn mean_media_rate(cfg: &DiskConfig) -> f64 {
    let geom = Geometry::new(&cfg.geometry, cfg.track_switch);
    let zones = geom.zones();
    let sum: f64 = zones.iter().map(|z| geom.media_rate(z.first_block)).sum();
    sum / zones.len() as f64
}

/// Expected steady-state throughput for `streams` synchronous sequential
/// readers of `request_bytes` each, interleaved round-robin on one disk.
///
/// Model: every cache-missing operation pays command overhead, a seek over
/// the inter-stream spacing, half a rotation, and the media transfer of the
/// request plus its read-ahead. When the stream count fits the segment
/// count, the read-ahead is consumed by later requests (one miss per
/// segment's worth of data); otherwise LRU reclaim voids it and every
/// request misses.
///
/// # Panics
///
/// Panics if `streams == 0`, `request_bytes == 0`, or the configuration is
/// invalid.
pub fn interleaved_streams(
    cfg: &DiskConfig,
    streams: usize,
    request_bytes: u64,
) -> ThroughputEstimate {
    assert!(streams > 0, "need at least one stream");
    assert!(request_bytes > 0, "request must be positive");
    cfg.validate().expect("invalid disk config");
    let geom = Geometry::new(&cfg.geometry, cfg.track_switch);
    let seek = SeekModel::fit(&cfg.seek, geom.total_cylinders());

    let request_blocks = bytes_to_blocks(request_bytes);
    let seg_blocks = bytes_to_blocks(cfg.cache.segment_bytes);
    let ra_blocks = if cfg.cache.segment_count == 0 || request_blocks >= seg_blocks {
        0
    } else {
        bytes_to_blocks(cfg.cache.read_ahead_bytes)
            .saturating_sub(request_blocks)
            .min(seg_blocks - request_blocks)
    };
    let op_blocks = request_blocks + ra_blocks;

    // Reuse: prefetched data survives only while each stream keeps its own
    // segment.
    let reuse = streams <= cfg.cache.segment_count;
    let delivered_blocks = if reuse { op_blocks } else { request_blocks };

    let positioning = if streams == 1 {
        SimDuration::ZERO // contiguous continuation, gap-credited
    } else {
        let spacing_cyl = (geom.total_cylinders() / streams as u64).max(1);
        seek.time(spacing_cyl) + geom.rotation() / 2
    };
    let transfer =
        SimDuration::from_secs_f64(op_blocks as f64 * BLOCK_SIZE as f64 / mean_media_rate(cfg));
    let per_op = cfg.command_overhead + positioning + transfer;
    let delivered = delivered_blocks * BLOCK_SIZE;
    ThroughputEstimate {
        mbytes_per_sec: delivered as f64 / (1024.0 * 1024.0) / per_op.as_secs_f64(),
        per_op,
        delivered_per_op: delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use seqio_simcore::units::{KIB, MIB};

    #[test]
    fn mean_rate_between_inner_and_outer() {
        let cfg = DiskConfig::wd800jd();
        let rate = mean_media_rate(&cfg);
        assert!(rate > cfg.geometry.inner_rate as f64 * 0.9);
        assert!(rate < cfg.geometry.outer_rate as f64);
    }

    #[test]
    fn single_stream_near_media_rate() {
        let cfg = DiskConfig::wd800jd();
        let e = interleaved_streams(&cfg, 1, 64 * KIB);
        let mbs = e.mbytes_per_sec;
        assert!(mbs > 40.0 && mbs < 65.0, "{mbs}");
    }

    #[test]
    fn collapse_when_streams_exceed_segments() {
        let cfg = DiskConfig::wd800jd(); // 32 segments
        let ok = interleaved_streams(&cfg, 30, 64 * KIB);
        let thrash = interleaved_streams(&cfg, 100, 64 * KIB);
        assert!(
            ok.mbytes_per_sec > 2.0 * thrash.mbytes_per_sec,
            "{} vs {}",
            ok.mbytes_per_sec,
            thrash.mbytes_per_sec
        );
        assert!(ok.delivered_per_op > thrash.delivered_per_op);
    }

    #[test]
    fn bigger_segments_help_when_they_fit() {
        let small = DiskConfig::wd800jd().with_cache(CacheConfig {
            segment_count: 32,
            segment_bytes: 64 * KIB,
            read_ahead_bytes: 64 * KIB,
        });
        let big = DiskConfig::wd800jd().with_cache(CacheConfig {
            segment_count: 32,
            segment_bytes: 2 * MIB,
            read_ahead_bytes: 2 * MIB,
        });
        let s = interleaved_streams(&small, 30, 64 * KIB).mbytes_per_sec;
        let b = interleaved_streams(&big, 30, 64 * KIB).mbytes_per_sec;
        assert!(b > 3.0 * s, "{b} vs {s}");
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_panics() {
        let _ = interleaved_streams(&DiskConfig::wd800jd(), 0, 64 * 1024);
    }
}
