//! Figure 13 — Disassociating dispatching from staging (8 disks).
//!
//! Paper: dispatching only `D = #disks = 8` streams with long residencies
//! (`N = 128`, `R = 512K`) recovers ~80% of the controller's 450 MB/s,
//! versus the collapsed `D = S` configuration of Figure 12.

use seqio_bench::{quick_mode, window_secs, Figure, Grid};
use seqio_core::ServerConfig;
use seqio_node::{Experiment, Frontend, NodeShape};
use seqio_simcore::units::KIB;

fn main() {
    let (warmup, duration) = window_secs((8, 8), (12, 12));
    let stream_counts: Vec<usize> =
        if quick_mode() { vec![10, 30, 100] } else { vec![10, 30, 60, 100] };

    let mut grid = Grid::new();
    for &n in &stream_counts {
        let cfg = ServerConfig::small_dispatch(8, 512 * KIB, 128);
        grid = grid.point(
            "D = #disks, N = 128",
            n.to_string(),
            Experiment::builder()
                .shape(NodeShape::eight_disk())
                .streams_per_disk(n)
                .frontend(Frontend::StreamScheduler(cfg))
                .warmup(warmup)
                .duration(duration)
                .seed(1313)
                .build(),
        );
        grid = grid.point(
            "D = S (from Fig. 12)",
            n.to_string(),
            Experiment::builder()
                .shape(NodeShape::eight_disk())
                .streams_per_disk(n)
                .frontend(Frontend::stream_scheduler_with_readahead(512 * KIB))
                .warmup(warmup)
                .duration(duration)
                .seed(1313)
                .build(),
        );
    }

    let mut fig = Figure::new(
        "Figure 13",
        "Dispatching fewer streams than staged (8 disks, R=512K)",
        "Streams per Disk",
        "Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("fig13_dispatch_staged");

    // Shape checks: the small dispatch set reaches a large fraction of the
    // 450 MB/s aggregate and clearly beats D = S at high stream counts.
    let small_ys = fig.series[0].ys();
    let all_ys = fig.series[1].ys();
    let last = small_ys.len() - 1;
    assert!(
        small_ys[last] > 0.6 * 450.0,
        "small dispatch set should recover most of 450 MB/s, got {:.0}",
        small_ys[last]
    );
    assert!(
        small_ys[last] > 1.5 * all_ys[last],
        "D=#disks ({:.0}) must beat D=S ({:.0}) at 100 streams/disk",
        small_ys[last],
        all_ys[last]
    );
    println!(
        "shape ok: D=#disks {:.0} MB/s ({:.0}% of 450) vs D=S {:.0} MB/s",
        small_ys[last],
        small_ys[last] / 4.5,
        all_ys[last]
    );
}
