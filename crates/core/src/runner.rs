//! Real-backend runner: the paper's user-level storage server over actual
//! files.
//!
//! [`RealNode`] hosts a [`StorageServer`] on a wall-clock loop, executing
//! its disk requests against real files with positioned reads on a worker
//! pool (the asynchronous-I/O structure of the paper's implementation,
//! with `O_DIRECT` when the filesystem allows it). Clients call
//! [`RealNode::read`] from any thread; requests flow through the same
//! classifier / dispatch-set / buffered-set machinery as the simulation.
//!
//! The runner demonstrates and measures *scheduling*: it performs the real
//! I/O and reports completions and timing, but does not hand data buffers
//! back to clients (an `xdd`-style exerciser rather than a file server).

use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use seqio_simcore::SimTime;

use crate::config::ServerConfig;
use crate::server::{ClientRequest, ServerMetrics, ServerOutput, StorageServer};

const BLOCK: u64 = 512;

/// One read job for the I/O worker pool.
#[derive(Debug)]
struct Job {
    backend_id: u64,
    disk: usize,
    offset: u64,
    len: usize,
}

enum Control {
    Client { req: ClientRequest, reply: Sender<io::Result<()>> },
    BackendDone { backend_id: u64, result: io::Result<()> },
    Shutdown,
}

/// A running user-level storage server over real files.
#[derive(Debug)]
pub struct RealNode {
    control: Sender<Control>,
    server_thread: Option<JoinHandle<ServerMetrics>>,
    io_threads: Vec<JoinHandle<()>>,
    next_client: AtomicU64,
    bytes_read: Arc<AtomicU64>,
    capacities: Vec<u64>,
}

impl RealNode {
    /// Opens `paths` (one file per "disk") and starts the server with
    /// `io_threads` backend workers.
    ///
    /// When `direct_io` is set, files are opened with `O_DIRECT` if the
    /// platform and filesystem allow it; otherwise the flag is dropped with
    /// a fallback to buffered reads (many test filesystems reject it).
    ///
    /// # Errors
    ///
    /// Returns any error from opening the files.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty, `io_threads == 0`, or `cfg` is invalid.
    pub fn open<P: AsRef<Path>>(
        paths: &[P],
        cfg: ServerConfig,
        io_threads: usize,
        direct_io: bool,
    ) -> io::Result<RealNode> {
        assert!(!paths.is_empty(), "need at least one backing file");
        assert!(io_threads > 0, "need at least one I/O thread");
        cfg.validate().expect("invalid server config");

        let mut files = Vec::with_capacity(paths.len());
        let mut capacities = Vec::with_capacity(paths.len());
        for p in paths {
            let file = open_file(p.as_ref(), direct_io)?;
            let len = file.metadata()?.len();
            capacities.push(len / BLOCK);
            files.push(Arc::new(file));
        }

        let (control_tx, control_rx) = unbounded::<Control>();
        let (job_tx, job_rx) = unbounded::<Job>();
        let bytes_read = Arc::new(AtomicU64::new(0));

        let mut io_handles = Vec::new();
        for w in 0..io_threads {
            let rx: Receiver<Job> = job_rx.clone();
            let done = control_tx.clone();
            let files = files.clone();
            let counter = Arc::clone(&bytes_read);
            io_handles.push(
                std::thread::Builder::new()
                    .name(format!("seqio-io-{w}"))
                    .spawn(move || {
                        let trace = std::env::var_os("SEQIO_TRACE_RUNNER").is_some();
                        while let Ok(job) = rx.recv() {
                            let t0 = Instant::now();
                            let result = read_exact_at(&files[job.disk], job.offset, job.len);
                            if trace && t0.elapsed().as_millis() > 50 {
                                eprintln!(
                                    "SLOW pread {}ms id={} len={}",
                                    t0.elapsed().as_millis(),
                                    job.backend_id,
                                    job.len
                                );
                            }
                            if result.is_ok() {
                                counter.fetch_add(job.len as u64, Ordering::Relaxed);
                            }
                            // If the server is gone, just stop.
                            if done
                                .send(Control::BackendDone { backend_id: job.backend_id, result })
                                .is_err()
                            {
                                break;
                            }
                        }
                    })
                    .expect("spawn io thread"),
            );
        }

        let server = StorageServer::new(cfg, capacities.clone());
        let server_thread = std::thread::Builder::new()
            .name("seqio-server".into())
            .spawn(move || server_loop(server, control_rx, job_tx))
            .expect("spawn server thread");

        Ok(RealNode {
            control: control_tx,
            server_thread: Some(server_thread),
            io_threads: io_handles,
            next_client: AtomicU64::new(0),
            bytes_read,
            capacities,
        })
    }

    /// Capacity of `disk` in 512-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range.
    pub fn capacity_blocks(&self, disk: usize) -> u64 {
        self.capacities[disk]
    }

    /// Total bytes the backend has read off the files.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Issues a read of `[lba, lba+blocks)` on `disk` and blocks until the
    /// server completes it (from memory or from the file).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the backend, or an error if the server
    /// has shut down.
    pub fn read(&self, disk: usize, lba: u64, blocks: u64) -> io::Result<()> {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = bounded(1);
        let req = ClientRequest { id, disk, lba, blocks, write: false };
        self.control
            .send(Control::Client { req, reply: reply_tx })
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))?;
        reply_rx.recv().map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))?
    }

    /// Stops the server and returns its final metrics.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn shutdown(mut self) -> ServerMetrics {
        let _ = self.control.send(Control::Shutdown);
        let metrics =
            self.server_thread.take().expect("not yet shut down").join().expect("server panicked");
        // Dropping the job sender (inside the server loop) stops workers.
        for h in self.io_threads.drain(..) {
            h.join().expect("io thread panicked");
        }
        metrics
    }
}

impl Drop for RealNode {
    fn drop(&mut self) {
        if self.server_thread.is_some() {
            let _ = self.control.send(Control::Shutdown);
            if let Some(h) = self.server_thread.take() {
                let _ = h.join();
            }
            for h in self.io_threads.drain(..) {
                let _ = h.join();
            }
        }
    }
}

/// The server event loop: wall time is mapped onto the simulation clock.
fn server_loop(
    mut server: StorageServer,
    control: Receiver<Control>,
    jobs: Sender<Job>,
) -> ServerMetrics {
    let started = Instant::now();
    let now = |started: Instant| SimTime::from_nanos(started.elapsed().as_nanos() as u64);
    let gc_period = std::time::Duration::from_nanos(server.gc_period().as_nanos());
    let mut next_gc = Instant::now() + gc_period;

    // Client requests waiting for completion, and backend errors to relay.
    let waiting: Mutex<std::collections::HashMap<u64, Sender<io::Result<()>>>> =
        Mutex::new(std::collections::HashMap::new());
    // Map of backend-id -> client ids to fail on error (only direct requests
    // map 1:1; fills just log).
    let mut failed: Option<io::Error> = None;

    let handle_outputs =
        |outs: Vec<ServerOutput>,
         jobs: &Sender<Job>,
         waiting: &Mutex<std::collections::HashMap<u64, Sender<io::Result<()>>>>| {
            for o in outs {
                match o {
                    ServerOutput::SubmitDisk(b) => {
                        let job = Job {
                            backend_id: b.id,
                            disk: b.disk,
                            offset: b.lba * BLOCK,
                            len: (b.blocks * BLOCK) as usize,
                        };
                        let _ = jobs.send(job);
                    }
                    ServerOutput::CompleteClient { client, .. } => {
                        if let Some(tx) = waiting.lock().remove(&client) {
                            let _ = tx.send(Ok(()));
                        }
                    }
                }
            }
        };

    let trace = std::env::var_os("SEQIO_TRACE_RUNNER").is_some();
    let mut last_event = Instant::now();
    loop {
        let timeout = next_gc.saturating_duration_since(Instant::now());
        match control.recv_timeout(timeout) {
            Ok(Control::Client { req, reply }) => {
                if trace && last_event.elapsed().as_millis() > 50 {
                    eprintln!(
                        "STALL {}ms before client req disk={} lba={} (mem={} live={} dispatched={})",
                        last_event.elapsed().as_millis(), req.disk, req.lba,
                        server.memory_used(), server.live_streams(), server.dispatched_streams()
                    );
                }
                last_event = Instant::now();
                waiting.lock().insert(req.id, reply);
                let outs = server.on_client_request(now(started), req);
                handle_outputs(outs, &jobs, &waiting);
            }
            Ok(Control::BackendDone { backend_id, result }) => {
                if trace && last_event.elapsed().as_millis() > 50 {
                    eprintln!(
                        "STALL {}ms before backend done id={} (mem={} live={} dispatched={})\n{}",
                        last_event.elapsed().as_millis(),
                        backend_id,
                        server.memory_used(),
                        server.live_streams(),
                        server.dispatched_streams(),
                        server.debug_dump()
                    );
                }
                last_event = Instant::now();
                if let Err(e) = result {
                    failed = Some(e);
                }
                let outs = server.on_disk_complete(now(started), backend_id);
                handle_outputs(outs, &jobs, &waiting);
            }
            Ok(Control::Shutdown) => break,
            Err(RecvTimeoutError::Timeout) => {
                let outs = server.on_gc(now(started));
                handle_outputs(outs, &jobs, &waiting);
                next_gc = Instant::now() + gc_period;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if let Some(e) = failed.take() {
            // Fail every waiter: a backend error is fatal for the run.
            for (_, tx) in waiting.lock().drain() {
                let _ = tx.send(Err(io::Error::new(e.kind(), e.to_string())));
            }
        }
    }
    server.metrics()
}

#[cfg(unix)]
fn open_file(path: &Path, direct_io: bool) -> io::Result<File> {
    use std::os::unix::fs::OpenOptionsExt;
    if direct_io {
        // O_DIRECT (0x4000 on Linux); probe an aligned read and fall back
        // to buffered I/O when the filesystem rejects either the flag or
        // direct reads (e.g. tmpfs, some overlayfs).
        #[cfg(target_os = "linux")]
        {
            let attempt = std::fs::OpenOptions::new().read(true).custom_flags(0x4000).open(path);
            if let Ok(f) = attempt {
                if read_exact_at(&f, 0, 4096).is_ok() {
                    return Ok(f);
                }
            }
        }
    }
    File::open(path)
}

#[cfg(not(unix))]
fn open_file(path: &Path, _direct_io: bool) -> io::Result<File> {
    File::open(path)
}

/// A page-aligned I/O buffer (`O_DIRECT` requires aligned memory).
struct AlignedBuf {
    ptr: *mut u8,
    len: usize,
}

impl AlignedBuf {
    const ALIGN: usize = 4096;

    fn new(len: usize) -> AlignedBuf {
        let size = len.next_multiple_of(Self::ALIGN).max(Self::ALIGN);
        let layout =
            std::alloc::Layout::from_size_align(size, Self::ALIGN).expect("valid aligned layout");
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "aligned allocation failed");
        AlignedBuf { ptr, len: size }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: ptr is valid for len bytes and exclusively owned.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        let layout = std::alloc::Layout::from_size_align(self.len, Self::ALIGN)
            .expect("valid aligned layout");
        // SAFETY: allocated with the identical layout in `new`.
        unsafe { std::alloc::dealloc(self.ptr, layout) };
    }
}

// SAFETY: the buffer owns its allocation exclusively.
unsafe impl Send for AlignedBuf {}

/// Positioned read of exactly `len` bytes at `offset` (short reads at EOF
/// are treated as success — streams may run off the end of a test file).
fn read_exact_at(file: &File, offset: u64, len: usize) -> io::Result<()> {
    let mut buf = AlignedBuf::new(len);
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        let slice = &mut buf.as_mut_slice()[..len];
        let mut done = 0usize;
        while done < len {
            match file.read_at(&mut slice[done..], offset + done as u64) {
                Ok(0) => break, // EOF
                Ok(n) => done += n,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
    #[cfg(not(unix))]
    {
        let _ = (file, offset, buf.as_mut_slice());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(megabytes: usize) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "seqio-runner-test-{}-{}.dat",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let mut f = File::create(&p).unwrap();
        let chunk = vec![7u8; 1 << 20];
        for _ in 0..megabytes {
            f.write_all(&chunk).unwrap();
        }
        p
    }

    fn small_cfg() -> ServerConfig {
        ServerConfig {
            dispatch_streams: 2,
            read_ahead_bytes: 256 * 1024,
            requests_per_residency: 2,
            memory_bytes: 2 * 2 * 256 * 1024,
            ..ServerConfig::default_tuning()
        }
    }

    #[test]
    fn sequential_reads_complete_and_detect_stream() {
        let path = temp_file(4);
        let node = RealNode::open(&[&path], small_cfg(), 2, false).unwrap();
        assert_eq!(node.capacity_blocks(0), 4 * 2048);
        // 32 sequential 64K reads.
        for i in 0..32u64 {
            node.read(0, i * 128, 128).expect("read completes");
        }
        assert!(node.bytes_read() >= 32 * 64 * 1024 / 2, "backend really read");
        let m = node.shutdown();
        assert_eq!(m.client_requests, 32);
        assert_eq!(m.completions, 32);
        assert!(m.streams_detected >= 1, "sequential pattern detected");
        assert!(m.memory_hits > 0, "staging served some requests");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn concurrent_clients_are_all_served() {
        let path = temp_file(8);
        let cfg = small_cfg();
        let node = Arc::new(RealNode::open(&[&path], cfg, 2, false).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let node = Arc::clone(&node);
            handles.push(std::thread::spawn(move || {
                let base = t * 4096; // 2 MiB apart
                for i in 0..16u64 {
                    node.read(0, base + i * 128, 128).expect("read");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let node = Arc::into_inner(node).expect("sole owner");
        let m = node.shutdown();
        assert_eq!(m.completions, 64);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn random_reads_pass_through() {
        let path = temp_file(4);
        let node = RealNode::open(&[&path], small_cfg(), 1, false).unwrap();
        for lba in [0u64, 4096, 1024, 7000, 128] {
            node.read(0, lba, 8).expect("read");
        }
        let m = node.shutdown();
        assert_eq!(m.completions, 5);
        assert!(m.direct_requests >= 4, "scattered reads stay direct");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn out_of_range_read_panics_cleanly() {
        let path = temp_file(1);
        let node = RealNode::open(&[&path], small_cfg(), 1, false).unwrap();
        // Past EOF: the server panics in its thread; the client sees an error.
        let r = node.read(0, 1 << 30, 8);
        assert!(r.is_err());
        // Do not call shutdown (the server thread is gone); drop handles it.
    }
}
