//! Scenario execution: replaying a [`ScenarioTrace`] against live storage
//! nodes, with optional adaptive autotuning at epoch boundaries.
//!
//! Each node is advanced independently from operation to operation —
//! injections and retirements through the same [`StreamHandoff`] surface
//! mid-run migration uses, interleaved with the adaptive tuner's epoch
//! ticks — so a worker pool can drive any subset of nodes concurrently
//! and the outcome is bit-identical at every `SEQIO_JOBS` value (the
//! atomic-cursor discipline of the cluster and client drivers).
//!
//! With an empty trace and an [inert](crate::AdaptiveConfig::inert) tuner
//! the runner degenerates to stepping the template experiment in epochs,
//! which `NodeSim` guarantees is bit-identical to [`Experiment::run`] —
//! the retune-neutrality property the test suite pins to the golden
//! figure hash.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use seqio_node::sweep::{derive_seed, resolve_jobs};
use seqio_node::{Experiment, Frontend, NodeSim, RunResult, StreamHandoff};
use seqio_simcore::{EpochController, SeqioError, SimTime};

use crate::adaptive::{AdaptiveConfig, AdaptiveTuner, RetuneAction};
use crate::trace::{ScenarioTrace, TraceOpKind};

/// One applied retune, for reporting and fingerprinting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetuneEvent {
    /// Node the retune was applied to.
    pub node: usize,
    /// Epoch boundary it fired at.
    pub at: SimTime,
    /// The knob values applied.
    pub action: RetuneAction,
}

/// A scenario execution: a per-node experiment template, a trace of
/// stream operations, and an optional adaptive tuner.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Per-node storage template (shape, frontend, costs, warmup,
    /// duration, faults). Its static stream layout still applies; a
    /// template with zero static streams runs in open-session mode and
    /// the trace provides the whole population.
    pub template: Experiment,
    /// The operations to perform. `trace.nodes` sets the node count.
    pub trace: ScenarioTrace,
    /// Worker override (`None` = `SEQIO_JOBS`, then available
    /// parallelism).
    pub jobs: Option<usize>,
    /// When set, node `k` runs with seed `derive_seed(base, k)`.
    pub base_seed: Option<u64>,
    /// Epoch-boundary adaptive tuning. Requires the stream-scheduler
    /// frontend. `None` skips epoch ticks entirely.
    pub adaptive: Option<AdaptiveConfig>,
}

/// What a [`ScenarioRun`] produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Per-node results, in node order.
    pub nodes: Vec<RunResult>,
    /// Every retune the adaptive tuner applied, in `(node, at)` order.
    pub retunes: Vec<RetuneEvent>,
}

impl ScenarioOutcome {
    /// Sum of per-node aggregate throughputs, MB/s.
    pub fn total_throughput_mbs(&self) -> f64 {
        self.nodes.iter().map(RunResult::total_throughput_mbs).sum()
    }

    /// FNV-1a digest of the outcome's observable state (delivered bytes,
    /// completion counts, event counts, per-stream bytes and rates, and
    /// every retune). Two outcomes with equal fingerprints ran
    /// bit-identically for all practical purposes; the determinism and
    /// record→replay tests compare these.
    pub fn fingerprint(&self) -> u64 {
        fn eat(h: &mut u64, v: u64) {
            for b in v.to_le_bytes() {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for r in &self.nodes {
            eat(&mut h, r.bytes_delivered);
            eat(&mut h, r.requests_completed);
            eat(&mut h, r.events_simulated);
            for &b in &r.per_stream_bytes {
                eat(&mut h, b);
            }
            for &m in &r.per_stream_mbs {
                eat(&mut h, m.to_bits());
            }
        }
        eat(&mut h, self.retunes.len() as u64);
        for e in &self.retunes {
            eat(&mut h, e.node as u64);
            eat(&mut h, e.at.as_nanos());
            eat(&mut h, e.action.dispatch_streams as u64);
            eat(&mut h, e.action.read_ahead_bytes);
            eat(&mut h, e.action.requests_per_residency);
            eat(&mut h, e.action.degraded_rotate_threshold.to_bits());
        }
        h
    }
}

/// The template's static stream population (before any trace injections).
fn static_streams(t: &Experiment) -> usize {
    match &t.stream_counts {
        Some(counts) => counts.iter().sum(),
        None => t.streams_per_disk * t.shape.total_disks(),
    }
}

impl ScenarioRun {
    /// A run of `trace` over `template` with default execution knobs.
    pub fn new(template: Experiment, trace: ScenarioTrace) -> ScenarioRun {
        ScenarioRun { template, trace, jobs: None, base_seed: None, adaptive: None }
    }

    /// Executes the scenario.
    ///
    /// # Errors
    ///
    /// Returns the first specification error (invalid trace, invalid
    /// template, adaptive tuning on a non-scheduler frontend); a valid
    /// specification always runs to completion.
    pub fn run(&self) -> Result<ScenarioOutcome, SeqioError> {
        self.trace.validate()?;
        let mut template = self.template.clone();
        if static_streams(&template) == 0 {
            template.open_sessions = true;
            template.requests_per_stream = None;
        }
        let server = match (&self.adaptive, &template.frontend) {
            (None, _) => None,
            (Some(_), Frontend::StreamScheduler(cfg)) => Some(cfg.clone()),
            (Some(_), _) => {
                return Err(SeqioError::Experiment(
                    "adaptive tuning requires the stream-scheduler frontend".into(),
                ));
            }
        };
        let nodes = self.trace.nodes;
        let base = self.base_seed.unwrap_or(template.seed);

        // Epoch boundaries the adaptive tuner observes at, inside the run
        // horizon.
        let horizon = SimTime::ZERO + template.warmup + template.duration;
        let ticks: Vec<SimTime> = match &self.adaptive {
            None => Vec::new(),
            Some(cfg) => {
                let mut ticks = Vec::new();
                let mut t = SimTime::ZERO + cfg.epoch;
                while t < horizon {
                    ticks.push(t);
                    t += cfg.epoch;
                }
                ticks
            }
        };

        // Per-node operation timelines, already in canonical trace order.
        let mut ops: Vec<Vec<crate::trace::TraceOp>> = vec![Vec::new(); nodes];
        for op in &self.trace.ops {
            ops[op.node].push(*op);
        }

        // Sims are built serially so construction order can never depend
        // on the worker schedule.
        let mut cells: Vec<Mutex<Option<NodeSim>>> = Vec::with_capacity(nodes);
        for k in 0..nodes {
            let mut spec = template.clone();
            if self.base_seed.is_some() {
                spec.seed = derive_seed(base, k);
            }
            let mut sim = NodeSim::new(&spec)?;
            seqio_simcore::SimComponent::init(&mut sim);
            cells.push(Mutex::new(Some(sim)));
        }

        struct NodeOut {
            result: RunResult,
            retunes: Vec<RetuneEvent>,
        }
        let outs: Vec<Mutex<Option<NodeOut>>> = (0..nodes).map(|_| Mutex::new(None)).collect();
        let adaptive = self.adaptive;
        let server_ref = &server;
        let ops_ref = &ops;
        let ticks_ref = &ticks;
        let cells_ref = &cells;
        let outs_ref = &outs;

        let drive_node = move |k: usize| {
            let mut sim = cells_ref[k]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("each node is driven exactly once");
            let mut tuner = adaptive
                .as_ref()
                .map(|cfg| AdaptiveTuner::new(server_ref.as_ref().expect("checked above"), *cfg));
            let mut slot_of: HashMap<usize, usize> = HashMap::new();
            let mut retunes: Vec<RetuneEvent> = Vec::new();

            // Two-pointer merge of trace ops and epoch ticks. An op at the
            // same instant as a tick is applied first: the controller
            // observes the state that already includes it.
            let node_ops = &ops_ref[k];
            let mut oi = 0;
            let mut ti = 0;
            loop {
                let take_op = match (node_ops.get(oi).map(|o| o.at), ticks_ref.get(ti).copied()) {
                    (None, None) => break,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (Some(ot), Some(tt)) => ot <= tt,
                };
                if take_op {
                    let op = &node_ops[oi];
                    oi += 1;
                    sim.advance_to(op.at);
                    match op.kind {
                        TraceOpKind::Inject { .. } => {
                            let spec = op.spec().expect("inject op has a spec");
                            let handoff = StreamHandoff::fresh(spec)
                                .expect("trace specs are validated up front");
                            let slot = sim.inject_stream(op.at, handoff);
                            slot_of.insert(op.stream, slot);
                        }
                        TraceOpKind::Retire => {
                            let slot = slot_of[&op.stream];
                            if sim.stream_live(slot) {
                                let _ = sim.retire_stream(slot);
                            }
                        }
                    }
                } else {
                    let tt = ticks_ref[ti];
                    ti += 1;
                    sim.advance_to(tt);
                    if let Some(tuner) = tuner.as_mut() {
                        let health = sim.health(tt);
                        if let Some(action) = tuner.epoch(tt, &health) {
                            sim.retune(
                                action.dispatch_streams,
                                action.read_ahead_bytes,
                                action.requests_per_residency,
                                action.degraded_rotate_threshold,
                            )
                            .expect("adaptive actions maintain the memory invariant");
                            retunes.push(RetuneEvent { node: k, at: tt, action });
                        }
                    }
                }
            }
            sim.advance_to(SimTime::MAX);
            let out = NodeOut { result: sim.finish(), retunes };
            *outs_ref[k].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
        };

        // Deal nodes to workers by an atomic cursor: each node is driven
        // by one worker and its own op order is fixed, so the worker
        // schedule cannot leak into the results.
        let workers = resolve_jobs(self.jobs).clamp(1, nodes);
        if workers == 1 {
            for k in 0..nodes {
                drive_node(k);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= nodes {
                            break;
                        }
                        drive_node(k);
                    });
                }
            });
        }

        let mut results = Vec::with_capacity(nodes);
        let mut retunes = Vec::new();
        for cell in outs {
            let out = cell
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every node was driven");
            results.push(out.result);
            retunes.extend(out.retunes);
        }
        Ok(ScenarioOutcome { nodes: results, retunes })
    }
}
