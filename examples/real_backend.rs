//! The scheduler on real storage: runs the user-level storage server
//! against actual files with a worker-pool backend (positioned reads,
//! `O_DIRECT` when the filesystem permits), mirroring the paper's real
//! Linux implementation.
//!
//! Creates two 64 MiB scratch files in the system temp directory, runs 8
//! concurrent sequential readers against each, and reports wall-clock
//! throughput plus scheduler internals.
//!
//! ```text
//! cargo run --release --example real_backend
//! ```

use std::fs::File;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use seqio::core::RealNode;
use seqio::prelude::*;
use seqio::simcore::units::{KIB, MIB};

fn make_scratch(name: &str, mib: usize) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("seqio-example-{}-{name}.dat", std::process::id()));
    let mut f = File::create(&p).expect("create scratch file");
    let chunk = vec![0xA5u8; MIB as usize];
    for _ in 0..mib {
        f.write_all(&chunk).expect("fill scratch file");
    }
    // Flush dirty pages now: an O_DIRECT read of a dirty range forces a
    // synchronous writeback, which would serialize the whole benchmark.
    f.sync_all().expect("sync scratch file");
    p
}

fn main() {
    let files = [make_scratch("disk0", 64), make_scratch("disk1", 64)];
    let readers_per_file = 8u64;
    let requests_per_reader = 64u64; // 64 x 64 KiB = 4 MiB per reader

    // Interactive timeouts: readers finish quickly here, and a finished
    // reader's staged read-ahead is only reclaimed by the periodic garbage
    // collector (paper 4.3) — so use a short buffer timeout, and bound how
    // far a stream may stage ahead of its reader.
    let cfg = ServerConfig {
        dispatch_streams: 4,
        read_ahead_bytes: MIB,
        requests_per_residency: 4,
        memory_bytes: 4 * MIB * 4,
        prefetch_lead_bytes: MIB,
        gc_period: SimDuration::from_millis(25),
        buffer_timeout: SimDuration::from_millis(200),
        ..ServerConfig::default_tuning()
    };
    println!(
        "user-level server over {} files, D={}, R={}K, N={}, M={}MB (SEQIO_DIRECT=1 for O_DIRECT)\n",
        files.len(),
        cfg.dispatch_streams,
        cfg.read_ahead_bytes / KIB,
        cfg.requests_per_residency,
        cfg.memory_bytes / MIB
    );

    // Buffered I/O by default: O_DIRECT latency is wildly unpredictable on
    // virtualized filesystems. Pass SEQIO_DIRECT=1 to exercise it anyway.
    let direct = std::env::var_os("SEQIO_DIRECT").is_some();
    let node = Arc::new(RealNode::open(&files, cfg, 4, direct).expect("open backing files"));
    let started = Instant::now();
    let mut handles = Vec::new();
    for disk in 0..files.len() {
        for r in 0..readers_per_file {
            let node = Arc::clone(&node);
            handles.push(std::thread::spawn(move || {
                // Spread readers across the file, 4 MiB runs each.
                let base = r * (64 / readers_per_file) * 2048;
                for i in 0..requests_per_reader {
                    node.read(disk, base + i * 128, 128).expect("read");
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("reader thread");
    }
    let elapsed = started.elapsed();
    let delivered = files.len() as u64 * readers_per_file * requests_per_reader * 64 * KIB;
    println!(
        "delivered {} MiB in {:.2}s  ->  {:.0} MB/s at the clients",
        delivered / MIB,
        elapsed.as_secs_f64(),
        delivered as f64 / MIB as f64 / elapsed.as_secs_f64()
    );
    println!("backend actually read {} MiB (read-ahead overshoot included)", {
        let n = Arc::strong_count(&node);
        debug_assert_eq!(n, 1);
        node.bytes_read() / MIB
    });

    let node = Arc::into_inner(node).expect("all readers joined");
    let m = node.shutdown();
    println!(
        "scheduler: {} streams detected, {} fills, {} admissions, {}/{} requests from memory",
        m.streams_detected, m.fills_issued, m.admissions, m.memory_hits, m.client_requests
    );

    for f in files {
        let _ = std::fs::remove_file(f);
    }
}
