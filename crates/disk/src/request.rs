//! Disk request types.

use std::fmt;

/// Logical block address, in 512-byte blocks.
pub type Lba = u64;

/// Size of one logical block in bytes.
pub const BLOCK_SIZE: u64 = 512;

/// Converts a byte count to whole blocks (rounding up).
///
/// # Examples
///
/// ```
/// use seqio_disk::bytes_to_blocks;
///
/// assert_eq!(bytes_to_blocks(512), 1);
/// assert_eq!(bytes_to_blocks(513), 2);
/// assert_eq!(bytes_to_blocks(64 * 1024), 128);
/// ```
pub const fn bytes_to_blocks(bytes: u64) -> u64 {
    bytes.div_ceil(BLOCK_SIZE)
}

/// Identifier the submitter uses to match completions to requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Direction of a disk transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Read from media into host memory.
    Read,
    /// Write from host memory onto media.
    Write,
}

/// A request submitted to a [`Disk`](crate::Disk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequest {
    /// Caller-chosen identifier echoed back on completion.
    pub id: RequestId,
    /// First block of the transfer.
    pub lba: Lba,
    /// Length of the transfer in blocks (must be positive).
    pub blocks: u64,
    /// Read or write.
    pub direction: Direction,
}

impl DiskRequest {
    /// Convenience constructor for a read.
    pub fn read(id: RequestId, lba: Lba, blocks: u64) -> Self {
        DiskRequest { id, lba, blocks, direction: Direction::Read }
    }

    /// Convenience constructor for a write.
    pub fn write(id: RequestId, lba: Lba, blocks: u64) -> Self {
        DiskRequest { id, lba, blocks, direction: Direction::Write }
    }

    /// One past the last block of the transfer.
    pub fn end(&self) -> Lba {
        self.lba + self.blocks
    }

    /// Transfer length in bytes.
    pub fn bytes(&self) -> u64 {
        self.blocks * BLOCK_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_conversion_rounds_up() {
        assert_eq!(bytes_to_blocks(0), 0);
        assert_eq!(bytes_to_blocks(1), 1);
        assert_eq!(bytes_to_blocks(1024), 2);
        assert_eq!(bytes_to_blocks(1025), 3);
    }

    #[test]
    fn request_accessors() {
        let r = DiskRequest::read(RequestId(3), 100, 8);
        assert_eq!(r.end(), 108);
        assert_eq!(r.bytes(), 4096);
        assert_eq!(r.direction, Direction::Read);
        let w = DiskRequest::write(RequestId(4), 0, 1);
        assert_eq!(w.direction, Direction::Write);
    }

    #[test]
    fn request_id_display() {
        assert_eq!(RequestId(17).to_string(), "req#17");
    }
}
