//! The two headline cluster guarantees from the issue's acceptance
//! criteria, asserted at the 100-streams-per-disk operating point the
//! `cluster_scaling` bench and `probe cluster` record:
//!
//! 1. aggregate throughput scales >= 3.5x from 1 to 4 healthy nodes;
//! 2. with one factor-4 straggler node, the straggler-aware router holds
//!    >= 1.5x the hash router's aggregate throughput.

use seqio_cluster::{ClusterExperiment, ClusterResult, ShardPolicy};
use seqio_node::{Experiment, FaultPlan, Frontend};
use seqio_simcore::units::KIB;
use seqio_simcore::SimDuration;

const STREAMS_PER_DISK: usize = 100;
const BASE_SEED: u64 = 2026;

/// Batch workload on the shared cluster clock: every stream pulls a
/// fixed request budget from time zero, so a node's realized window is
/// its drain time and the cluster window is the makespan.
fn template() -> Experiment {
    Experiment::builder()
        .streams_per_disk(STREAMS_PER_DISK)
        .request_size(64 * KIB)
        .frontend(Frontend::stream_scheduler_with_readahead(512 * KIB))
        .requests_per_stream(16)
        .warmup(SimDuration::ZERO)
        .duration(SimDuration::from_secs(120))
        .build()
}

fn run(nodes: usize, policy: ShardPolicy, straggler_node: Option<usize>) -> ClusterResult {
    let mut b = ClusterExperiment::builder()
        .template(template())
        .nodes(nodes)
        .policy(policy)
        .base_seed(BASE_SEED);
    if let Some(k) = straggler_node {
        b = b.node_fault(k, FaultPlan::new().straggler(0, 4.0, SimDuration::ZERO, None));
    }
    b.run().unwrap()
}

#[test]
fn four_healthy_nodes_scale_aggregate_throughput_at_least_3_5x() {
    let one = run(1, ShardPolicy::Identity, None);
    let four = run(4, ShardPolicy::HashByStream, None);
    let scale = four.total_throughput_mbs() / one.total_throughput_mbs();
    assert!(
        scale >= 3.5,
        "1 -> 4 node scaling {scale:.2}x below 3.5x \
         ({:.2} -> {:.2} MB/s at {STREAMS_PER_DISK} streams/disk)",
        one.total_throughput_mbs(),
        four.total_throughput_mbs()
    );
    // Full batch delivered on both sides.
    assert_eq!(one.requests_completed, (STREAMS_PER_DISK * 16) as u64);
    assert_eq!(four.requests_completed, (4 * STREAMS_PER_DISK * 16) as u64);
}

#[test]
fn straggler_aware_routing_beats_hash_by_at_least_1_5x_under_one_straggler() {
    let hash = run(4, ShardPolicy::HashByStream, Some(1));
    let aware = run(4, ShardPolicy::StragglerAware, Some(1));

    // The hash router keeps feeding the degraded node, so the cluster
    // makespan stretches with the factor-4 disk; the aware router
    // steers the whole batch onto the three healthy nodes.
    assert!(hash.nodes[1].assigned_streams > 0);
    assert_eq!(aware.nodes[1].assigned_streams, 0);
    assert!(aware.window < hash.window, "steering must shorten the makespan");

    let ratio = aware.total_throughput_mbs() / hash.total_throughput_mbs();
    assert!(
        ratio >= 1.5,
        "straggler-aware routing held only {ratio:.2}x of hash routing \
         ({:.2} vs {:.2} MB/s)",
        aware.total_throughput_mbs(),
        hash.total_throughput_mbs()
    );
    // Both routers still deliver the complete batch.
    let batch = (4 * STREAMS_PER_DISK * 16) as u64;
    assert_eq!(hash.requests_completed, batch);
    assert_eq!(aware.requests_completed, batch);
}
