//! Figure 11 — Effect of storage-node memory size on throughput.
//!
//! Paper: `D` is limited by memory as `D = M / (R*N)`; M swept 8–256 MB for
//! `R` in {256K, 1M, 8M} and 1/10/100 streams. Large read-ahead with few
//! dispatched streams beats many dispatched streams with small read-ahead
//! (e.g. one 8 MB-R stream in 16 MB of memory outperforms 100 dispatched
//! streams at 256 KB).

use seqio_bench::{quick_mode, window_secs, Figure, Grid};
use seqio_core::ServerConfig;
use seqio_node::{Experiment, Frontend};
use seqio_simcore::units::{format_bytes, KIB, MIB};

fn main() {
    let (warmup, duration) = window_secs((4, 6), (8, 12));
    let memories: Vec<u64> = if quick_mode() {
        vec![8 * MIB, 16 * MIB, 64 * MIB, 256 * MIB]
    } else {
        vec![8 * MIB, 16 * MIB, 32 * MIB, 64 * MIB, 128 * MIB, 256 * MIB]
    };
    let readaheads: Vec<u64> =
        if quick_mode() { vec![8 * MIB, 256 * KIB] } else { vec![8 * MIB, MIB, 256 * KIB] };
    let stream_counts: Vec<usize> = vec![1, 10, 100];

    let mut grid = Grid::new();
    for &ra in &readaheads {
        for &n in &stream_counts {
            let label = format!("S={n} (RA={})", format_bytes(ra));
            for &m in &memories {
                if m < ra {
                    // Cannot hold even one buffer.
                    grid = grid.fixed(&label, format_bytes(m), 0.0);
                    continue;
                }
                let cfg = ServerConfig::memory_limited(m, ra, 1);
                grid = grid.point(
                    &label,
                    format_bytes(m),
                    Experiment::builder()
                        .streams_per_disk(n)
                        .frontend(Frontend::StreamScheduler(cfg))
                        .warmup(warmup)
                        .duration(duration)
                        .seed(1111)
                        .build(),
                );
            }
        }
    }

    let mut fig = Figure::new(
        "Figure 11",
        "Effect of storage memory size (D = M/(R*N), N = 1)",
        "Memory Size",
        "Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("fig11_memory");

    // Shape checks. (1) A single stream is insensitive to memory.
    let single_big_ra = fig.series[0].ys();
    let valid: Vec<f64> = single_big_ra.iter().copied().filter(|&y| y > 0.0).collect();
    let spread = valid.iter().cloned().fold(f64::MIN, f64::max)
        - valid.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 20.0, "single stream should be flat-ish: {single_big_ra:?}");
    // (2) Large R with little memory beats small R with all streams
    // dispatched: S=100/RA=8M at 16MB vs S=100/RA=256K at 256MB.
    let s100_big =
        fig.series.iter().find(|s| s.label.starts_with("S=100 (RA=8M")).expect("series exists");
    let s100_small =
        fig.series.iter().find(|s| s.label.starts_with("S=100 (RA=256K")).expect("series exists");
    let big_at_16m = s100_big.points.iter().find(|(x, _)| x == "16M").map(|p| p.1).unwrap();
    let small_at_max = s100_small.points.last().unwrap().1;
    assert!(
        big_at_16m > small_at_max,
        "8M-RA with 16MB memory ({big_at_16m:.1}) should beat 256K-RA with ample memory ({small_at_max:.1})"
    );
    println!(
        "shape ok: S=100, RA=8M@16MB {:.0} MB/s > RA=256K@{} {:.0} MB/s",
        big_at_16m,
        s100_small.points.last().unwrap().0,
        small_at_max
    );
}
