//! Request-lifecycle spans: phase-stamped successors to the flat
//! [`TraceRecord`](crate::TraceRecord).
//!
//! When span recording is enabled (see
//! [`ObsConfig`](seqio_simcore::ObsConfig) and
//! [`ExperimentBuilder::observe`](crate::ExperimentBuilder::observe)), the
//! engine records one [`SpanRecord`] per client request completed inside
//! the measured window. Each span carries up to eight phase timestamps
//! ([`SpanPhase`]) plus the controller's fault-path annotations (retries,
//! deadline overrun). The final `network_delivered` phase is stamped only
//! by the client front-end tier (`seqio-client`); storage-node runs leave
//! it unset and older span CSVs without its column still parse.
//!
//! Phases a request skips (a direct-path request is never classified; a
//! memory hit never waits on a disk) contribute zero duration, so
//! [`SpanRecord::phase_durations`] always sums exactly to the end-to-end
//! latency — the property the `report --phases` breakdown relies on.

use std::fmt::Write as _;

use seqio_simcore::{LatencyHistogram, SimDuration, SimTime, SpanPhase};

/// One completed client request with per-phase timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stream index within the experiment.
    pub stream: usize,
    /// Target disk.
    pub disk: usize,
    /// First block.
    pub lba: u64,
    /// Length in blocks.
    pub blocks: u64,
    /// Whether the buffered set served it without new disk I/O.
    pub from_memory: bool,
    /// Retries the serving disk fetch went through (fault path).
    pub retries: u32,
    /// Whether the serving fetch overran the controller deadline.
    pub timed_out: bool,
    /// Phase timestamps, indexed by [`SpanPhase::index`]; `None` when the
    /// request skipped the phase.
    pub stamps: [Option<SimTime>; SpanPhase::COUNT],
}

impl SpanRecord {
    /// The timestamp of one phase, if the request visited it.
    pub fn stamp(&self, phase: SpanPhase) -> Option<SimTime> {
        self.stamps[phase.index()]
    }

    /// When the client sent the request.
    pub fn enqueued(&self) -> SimTime {
        self.stamps[SpanPhase::Enqueued.index()].expect("spans always carry an enqueue stamp")
    }

    /// When the response reached the client.
    pub fn delivered(&self) -> SimTime {
        self.stamps[SpanPhase::Delivered.index()].expect("finished spans carry a delivery stamp")
    }

    /// End-to-end latency: the final (maximal) stamp minus the enqueue.
    /// Without a `network_delivered` stamp this is delivery minus enqueue,
    /// exactly as before the front-end tier existed.
    pub fn total(&self) -> SimDuration {
        let end = self.stamps.iter().flatten().copied().fold(self.delivered(), SimTime::max);
        end.duration_since(self.enqueued())
    }

    /// Time attributed to each phase, in [`SpanPhase::ALL`] order.
    ///
    /// Phase `i`'s duration is the time from the latest earlier stamp to
    /// phase `i`'s stamp; skipped phases get zero. By construction the
    /// durations sum exactly to [`total`](Self::total) (delivery is always
    /// the final, maximal stamp).
    pub fn phase_durations(&self) -> [SimDuration; SpanPhase::COUNT] {
        let mut out = [SimDuration::ZERO; SpanPhase::COUNT];
        let mut prev = self.enqueued();
        for (i, slot) in self.stamps.iter().enumerate().skip(1) {
            if let Some(at) = *slot {
                out[i] = at.saturating_duration_since(prev);
                prev = prev.max(at);
            }
        }
        out
    }
}

/// Renders spans as CSV (with header). Skipped phases are empty fields.
pub fn spans_to_csv(spans: &[SpanRecord]) -> String {
    let mut out = String::from("stream,disk,lba,blocks,from_memory,retries,timed_out");
    for p in SpanPhase::ALL {
        let _ = write!(out, ",{}_ns", p.name());
    }
    out.push('\n');
    for s in spans {
        let _ = write!(
            out,
            "{},{},{},{},{},{},{}",
            s.stream, s.disk, s.lba, s.blocks, s.from_memory, s.retries, s.timed_out
        );
        for stamp in s.stamps {
            match stamp {
                Some(at) => {
                    let _ = write!(out, ",{}", at.as_nanos());
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Parses the CSV produced by [`spans_to_csv`] back into records.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn spans_from_csv(csv: &str) -> Result<Vec<SpanRecord>, String> {
    let n_fields = 7 + SpanPhase::COUNT;
    // Span CSVs written before the network_delivered phase existed carry
    // one phase column fewer; accept them, leaving the final stamp unset.
    let n_fields_legacy = n_fields - 1;
    let mut out = Vec::new();
    for (i, line) in csv.lines().enumerate() {
        if i == 0 && line.starts_with("stream,") {
            continue; // header
        }
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != n_fields && f.len() != n_fields_legacy {
            return Err(format!("line {}: expected {n_fields} fields, got {}", i + 1, f.len()));
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, String> {
            s.parse().map_err(|_| format!("line {}: bad {what} {s:?}", i + 1))
        };
        let parse_bool = |s: &str, what: &str| -> Result<bool, String> {
            match s.trim() {
                "true" => Ok(true),
                "false" => Ok(false),
                other => Err(format!("line {}: bad {what} {other:?}", i + 1)),
            }
        };
        let mut stamps = [None; SpanPhase::COUNT];
        for (k, p) in SpanPhase::ALL.iter().enumerate().take(f.len() - 7) {
            let cell = f[7 + k].trim();
            if !cell.is_empty() {
                stamps[k] = Some(SimTime::from_nanos(parse_u64(cell, p.name())?));
            }
        }
        if stamps[SpanPhase::Enqueued.index()].is_none()
            || stamps[SpanPhase::Delivered.index()].is_none()
        {
            return Err(format!("line {}: span lacks enqueue/delivery stamps", i + 1));
        }
        // A delivery stamped before the enqueue would make every
        // downstream duration computation panic; reject it here instead.
        if stamps[SpanPhase::Delivered.index()] < stamps[SpanPhase::Enqueued.index()] {
            return Err(format!("line {}: delivery precedes enqueue", i + 1));
        }
        out.push(SpanRecord {
            stream: parse_u64(f[0], "stream")? as usize,
            disk: parse_u64(f[1], "disk")? as usize,
            lba: parse_u64(f[2], "lba")?,
            blocks: parse_u64(f[3], "blocks")?,
            from_memory: parse_bool(f[4], "from_memory")?,
            retries: parse_u64(f[5], "retries")? as u32,
            timed_out: parse_bool(f[6], "timed_out")?,
            stamps,
        });
    }
    Ok(out)
}

/// Renders spans as JSON Lines: one object per span with snake_case phase
/// names, `null` for skipped phases.
pub fn spans_to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        let _ = write!(
            out,
            "{{\"stream\":{},\"disk\":{},\"lba\":{},\"blocks\":{},\"from_memory\":{},\
             \"retries\":{},\"timed_out\":{}",
            s.stream, s.disk, s.lba, s.blocks, s.from_memory, s.retries, s.timed_out
        );
        for (k, p) in SpanPhase::ALL.iter().enumerate() {
            match s.stamps[k] {
                Some(at) => {
                    let _ = write!(out, ",\"{}_ns\":{}", p.name(), at.as_nanos());
                }
                None => {
                    let _ = write!(out, ",\"{}_ns\":null", p.name());
                }
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Per-phase latency distributions aggregated over a set of spans.
#[derive(Debug, Clone)]
pub struct PhaseBreakdown {
    /// One histogram per [`SpanPhase`], in [`SpanPhase::ALL`] order.
    pub phases: [LatencyHistogram; SpanPhase::COUNT],
    /// End-to-end latency distribution over the same spans.
    pub total: LatencyHistogram,
}

impl PhaseBreakdown {
    /// Aggregates the given spans.
    pub fn from_spans(spans: &[SpanRecord]) -> Self {
        let mut phases: [LatencyHistogram; SpanPhase::COUNT] = Default::default();
        let mut total = LatencyHistogram::new();
        for s in spans {
            for (h, d) in phases.iter_mut().zip(s.phase_durations()) {
                h.record(d);
            }
            total.record(s.total());
        }
        PhaseBreakdown { phases, total }
    }

    /// Sum of the per-phase exact means, in milliseconds. Equals the
    /// end-to-end mean up to integer-division error (< 1 ns per phase).
    pub fn sum_of_phase_means_ms(&self) -> f64 {
        self.phases.iter().map(|h| h.mean().as_millis_f64()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    fn span(stamp_us: [Option<u64>; SpanPhase::COUNT]) -> SpanRecord {
        let mut stamps = [None; SpanPhase::COUNT];
        for (k, s) in stamp_us.iter().enumerate() {
            stamps[k] = s.map(t);
        }
        SpanRecord {
            stream: 1,
            disk: 0,
            lba: 4096,
            blocks: 128,
            from_memory: true,
            retries: 0,
            timed_out: false,
            stamps,
        }
    }

    #[test]
    fn durations_sum_to_total_with_all_phases() {
        let s = span([
            Some(0),
            Some(10),
            Some(20),
            Some(30),
            Some(100),
            Some(100),
            Some(130),
            Some(180),
        ]);
        let d = s.phase_durations();
        assert_eq!(d[SpanPhase::Classified.index()], SimDuration::from_micros(10));
        assert_eq!(d[SpanPhase::DiskComplete.index()], SimDuration::from_micros(70));
        assert_eq!(d[SpanPhase::Staged.index()], SimDuration::ZERO);
        assert_eq!(d[SpanPhase::NetworkDelivered.index()], SimDuration::from_micros(50));
        assert_eq!(s.total(), SimDuration::from_micros(180));
        assert_eq!(d.iter().copied().sum::<SimDuration>(), s.total());
    }

    #[test]
    fn durations_sum_to_total_with_skipped_phases() {
        // Direct path without a front-end tier: no classification, no
        // admission, no staging, no network hop.
        let s = span([Some(0), None, None, Some(15), Some(95), None, Some(120), None]);
        let d = s.phase_durations();
        assert_eq!(d[SpanPhase::Classified.index()], SimDuration::ZERO);
        assert_eq!(d[SpanPhase::DiskIssued.index()], SimDuration::from_micros(15));
        assert_eq!(d[SpanPhase::DiskComplete.index()], SimDuration::from_micros(80));
        assert_eq!(d[SpanPhase::Delivered.index()], SimDuration::from_micros(25));
        assert_eq!(d[SpanPhase::NetworkDelivered.index()], SimDuration::ZERO);
        assert_eq!(s.total(), SimDuration::from_micros(120));
        assert_eq!(d.iter().copied().sum::<SimDuration>(), s.total());
    }

    #[test]
    fn out_of_order_stamps_still_sum_exactly() {
        // A re-announced DiskIssued stamped after DiskComplete must not
        // produce negative or double-counted time.
        let s = span([Some(0), Some(5), Some(50), Some(40), Some(45), Some(45), Some(60), None]);
        let d = s.phase_durations();
        assert_eq!(d.iter().copied().sum::<SimDuration>(), s.total());
    }

    #[test]
    fn csv_round_trips() {
        let spans = vec![
            span([
                Some(0),
                Some(10),
                Some(20),
                Some(30),
                Some(100),
                Some(100),
                Some(130),
                Some(175),
            ]),
            span([Some(5), None, None, Some(15), Some(95), None, Some(120), None]),
        ];
        let csv = spans_to_csv(&spans);
        assert!(csv.starts_with("stream,disk,lba,blocks,from_memory,retries,timed_out,enqueued_ns"));
        assert!(csv.lines().next().unwrap().ends_with("network_delivered_ns"));
        let parsed = spans_from_csv(&csv).unwrap();
        assert_eq!(parsed, spans);
    }

    #[test]
    fn csv_accepts_legacy_files_without_network_column() {
        // A file written before the network_delivered phase existed: seven
        // phase columns. The final stamp parses as "never visited".
        let legacy = "0,0,4096,128,true,0,false,0,,,,,,130";
        let parsed = spans_from_csv(legacy).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].stamp(SpanPhase::NetworkDelivered), None);
        assert_eq!(parsed[0].total(), SimDuration::from_nanos(130));
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        assert!(spans_from_csv("1,2,3").is_err());
        // Missing delivery stamp.
        let line = "0,0,0,128,true,0,false,0,,,,,,";
        let err = spans_from_csv(line).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        // Garbage bool.
        let line = "0,0,0,128,TRUE,0,false,0,,,,,,100";
        assert!(spans_from_csv(line).is_err());
    }

    #[test]
    fn jsonl_emits_one_object_per_span() {
        let spans = vec![span([Some(0), None, None, Some(15), Some(95), None, Some(120), None])];
        let jsonl = spans_to_jsonl(&spans);
        assert_eq!(jsonl.lines().count(), 1);
        let line = jsonl.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"classified_ns\":null"));
        assert!(line.contains("\"delivered_ns\":120000"));
        assert!(line.contains("\"network_delivered_ns\":null"));
    }

    #[test]
    fn breakdown_phase_means_sum_to_total_mean() {
        let spans: Vec<SpanRecord> = (0..100)
            .map(|k| {
                span([
                    Some(k),
                    Some(k + 3),
                    Some(k + 7),
                    Some(k + 9),
                    Some(k + 91),
                    Some(k + 91),
                    Some(k + 117),
                    Some(k + 141),
                ])
            })
            .collect();
        let b = PhaseBreakdown::from_spans(&spans);
        let total_ms = b.total.mean().as_millis_f64();
        assert!((b.sum_of_phase_means_ms() - total_ms).abs() < 1e-5);
        assert_eq!(b.total.count(), 100);
    }
}
