//! The 1-node equivalence oracle: a single-node cluster with the
//! identity router is the plain `Experiment` — bit for bit, with the
//! observability recorder both off and on — and the fig01 golden subset
//! reproduces through the cluster path unchanged.

use seqio_cluster::{ClusterExperiment, ShardPolicy};
use seqio_node::span::spans_to_csv;
use seqio_node::{Experiment, Frontend, NodeShape, ObsConfig, RunResult};
use seqio_simcore::units::{KIB, MIB};
use seqio_simcore::SimDuration;

/// Every observable a figure could plot, plus the diagnostics (same
/// shape as the node-level sweep determinism fingerprint).
fn fingerprint(r: &RunResult) -> (u64, u64, Vec<u64>, Vec<u64>, u64, u64, String) {
    (
        r.bytes_delivered,
        r.requests_completed,
        r.disk_seeks.clone(),
        r.disk_ops.clone(),
        r.ctrl_wasted_bytes,
        r.ctrl_bytes_from_disks,
        format!(
            "{:?} {:?} {:?} {:?} {:?}",
            r.per_stream_mbs, r.window, r.disk_read_errors, r.disk_retries, r.disk_timeouts
        ),
    )
}

fn template() -> Experiment {
    Experiment::builder()
        .shape(NodeShape::eight_disk())
        .streams_per_disk(5)
        .request_size(64 * KIB)
        .frontend(Frontend::stream_scheduler_with_readahead(MIB))
        .warmup(SimDuration::from_millis(500))
        .duration(SimDuration::from_secs(1))
        .seed(33)
        .build()
}

fn identity_cluster(t: Experiment) -> ClusterExperiment {
    // No base seed: the node must keep the template seed verbatim.
    ClusterExperiment::builder().template(t).nodes(1).policy(ShardPolicy::Identity).build()
}

#[test]
fn one_node_identity_cluster_is_the_plain_experiment() {
    let plain = template().run();
    let cluster = identity_cluster(template()).run().unwrap();

    // The node ran the template spec verbatim and produced the same
    // RunResult bit for bit.
    let node = &cluster.nodes[0];
    assert_eq!(node.assigned_streams, 40);
    let spec = node.spec.as_ref().unwrap();
    assert_eq!(spec.seed, 33);
    assert_eq!(spec.streams_per_disk, 5);
    assert!(spec.stream_counts.is_none(), "even shares must keep the uniform layout");
    assert_eq!(fingerprint(node.result.as_ref().unwrap()), fingerprint(&plain));

    // The merged cluster view degenerates to the node view: same
    // per-stream series (the makespan rescale ratio is exactly 1.0),
    // same window, same totals.
    assert_eq!(cluster.per_stream_mbs, plain.per_stream_mbs);
    assert_eq!(cluster.window, plain.window);
    assert_eq!(cluster.bytes_delivered, plain.bytes_delivered);
    assert_eq!(cluster.requests_completed, plain.requests_completed);
    assert_eq!(cluster.events_simulated, plain.events_simulated);
    assert_eq!(cluster.total_throughput_mbs().to_bits(), plain.total_throughput_mbs().to_bits());
    assert_eq!(cluster.mean_response_ms().to_bits(), plain.mean_response_ms().to_bits());
    assert_eq!(cluster.p99_response_ms().to_bits(), plain.p99_response_ms().to_bits());
}

#[test]
fn equivalence_holds_with_the_observability_recorder_on() {
    let obs = ObsConfig::all().sample_every(SimDuration::from_millis(5));
    let plain = template().observe(obs).run();
    let cluster = identity_cluster(template().observe(obs)).run().unwrap();
    let node_result = cluster.nodes[0].result.as_ref().unwrap();

    // Simulation outputs stay bit-identical with recording enabled.
    assert_eq!(fingerprint(node_result), fingerprint(&plain));

    // And the recordings themselves match the plain run's.
    let plain_spans = plain.spans.as_ref().expect("spans recorded");
    let node_spans = node_result.spans.as_ref().expect("spans recorded");
    assert_eq!(spans_to_csv(node_spans), spans_to_csv(plain_spans));

    let plain_series = plain.metrics.as_ref().expect("metrics recorded");
    let merged = cluster.metrics.as_ref().expect("cluster merges node series");
    assert_eq!(merged.len(), plain_series.len());
    assert_eq!(merged.times(), plain_series.times());
    for name in plain_series.names() {
        let prefixed = format!("node0.{name}");
        assert_eq!(
            merged.column_by_name(&prefixed).unwrap_or_else(|| panic!("{prefixed} missing")),
            plain_series.column_by_name(name).unwrap(),
            "column {name} drifted through the merge"
        );
    }
}

/// FNV-1a over the rendered CSV bytes — dependency-free and stable.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The fig01 subset golden from `crates/node/tests/sweep_determinism.rs`,
/// reproduced through 1-node identity clusters: the cluster path must not
/// perturb a single byte of the figure pipeline.
#[test]
fn fig01_subset_golden_reproduces_through_the_cluster_path() {
    const GOLDEN: u64 = 4786420990628480947;

    let per_disk = [1usize, 5];
    let requests = [64 * KIB, 256 * KIB];
    let mut throughputs = Vec::new();
    for &streams in &per_disk {
        for &req in &requests {
            let t = Experiment::builder()
                .shape(NodeShape::sixty_disk())
                .streams_per_disk(streams)
                .request_size(req)
                .warmup(SimDuration::from_secs(1))
                .duration(SimDuration::from_secs(2))
                .seed(11)
                .build();
            let result = identity_cluster(t).run().unwrap();
            throughputs.push(result.total_throughput_mbs());
        }
    }

    let mut csv = String::from("Request size,60 Streams,300 Streams\n");
    for (ri, x) in ["64K", "256K"].iter().enumerate() {
        csv.push_str(x);
        for si in 0..per_disk.len() {
            let y = throughputs[si * requests.len() + ri];
            csv.push_str(&format!(",{y:.4}"));
        }
        csv.push('\n');
    }
    assert_eq!(
        fnv1a(csv.as_bytes()),
        GOLDEN,
        "fig01 subset drifted when run through 1-node clusters:\n{csv}"
    );
}
