//! Client emulation.
//!
//! The paper's harness emulates streams from separate client machines: each
//! client "issues requests from all streams it emulates as soon as it
//! receives a response, never exceeding the maximum number of outstanding
//! I/Os" (one per stream in every experiment). [`ClientSet`] reproduces that
//! closed-loop behaviour; the storage-node engine asks it what to send next.

use seqio_disk::Lba;
use seqio_simcore::SimRng;

use crate::stream::{StreamSpec, StreamState};

/// Identifier of a stream within a [`ClientSet`].
pub type StreamIdx = usize;

/// A request the client set wants submitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientRequest {
    /// Which stream issued it.
    pub stream: StreamIdx,
    /// Destination disk.
    pub disk: usize,
    /// First block.
    pub lba: Lba,
    /// Length in blocks.
    pub blocks: u64,
}

/// Closed-loop generator over a set of streams.
#[derive(Debug)]
pub struct ClientSet {
    streams: Vec<StreamState>,
    outstanding: Vec<u32>,
    max_outstanding: u32,
    completed: Vec<u64>,
}

impl ClientSet {
    /// Builds a client set with `max_outstanding` in-flight requests per
    /// stream (the paper uses 1 throughout). `specs` may be empty: an
    /// open-session node starts with no streams and adopts them mid-run
    /// via [`inject_stream`](Self::inject_stream).
    ///
    /// # Panics
    ///
    /// Panics if `max_outstanding == 0` or any spec is invalid.
    pub fn new(specs: Vec<StreamSpec>, max_outstanding: u32, rng: &mut SimRng) -> Self {
        assert!(max_outstanding > 0, "need at least one outstanding request");
        let streams: Vec<StreamState> = specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| StreamState::new(s, rng.fork(i as u64)))
            .collect();
        let n = streams.len();
        ClientSet { streams, outstanding: vec![0; n], max_outstanding, completed: vec![0; n] }
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// `true` if there are no streams (an open-session node before its
    /// first arrival).
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Initial burst: fills every stream's window.
    pub fn initial_requests(&mut self) -> Vec<ClientRequest> {
        let mut out = Vec::new();
        for s in 0..self.streams.len() {
            while self.outstanding[s] < self.max_outstanding {
                match self.try_issue(s) {
                    Some(r) => out.push(r),
                    None => break,
                }
            }
        }
        out
    }

    /// Called when a request from `stream` completes; returns the follow-up
    /// request, if the stream has one.
    ///
    /// # Panics
    ///
    /// Panics if `stream` has nothing outstanding (double completion).
    pub fn on_complete(&mut self, stream: StreamIdx) -> Option<ClientRequest> {
        assert!(self.outstanding[stream] > 0, "completion without outstanding request");
        self.outstanding[stream] -= 1;
        self.completed[stream] += 1;
        self.try_issue(stream)
    }

    fn try_issue(&mut self, s: StreamIdx) -> Option<ClientRequest> {
        if self.outstanding[s] >= self.max_outstanding {
            return None;
        }
        let (lba, blocks) = self.streams[s].next_request()?;
        self.outstanding[s] += 1;
        Some(ClientRequest { stream: s, disk: self.streams[s].spec().disk, lba, blocks })
    }

    /// Requests completed by `stream` so far.
    pub fn completed(&self, stream: StreamIdx) -> u64 {
        self.completed[stream]
    }

    /// The static description of `stream`.
    pub fn stream_spec(&self, stream: StreamIdx) -> &StreamSpec {
        self.streams[stream].spec()
    }

    /// `true` while `stream` still has requests to issue.
    pub fn stream_live(&self, stream: StreamIdx) -> bool {
        !self.streams[stream].exhausted()
    }

    /// Streams that still have requests to issue.
    pub fn live_count(&self) -> usize {
        self.streams.iter().filter(|s| !s.exhausted()).count()
    }

    /// Retires `stream` for migration: splits off its unissued tail (see
    /// [`StreamState::split_remainder`]) and exhausts the local generator,
    /// so the stream issues nothing further here. A request already in
    /// flight still completes — and is counted — on this client set.
    /// Returns `None` when the stream has nothing left to migrate.
    pub fn retire_stream(&mut self, stream: StreamIdx) -> Option<StreamSpec> {
        self.streams[stream].split_remainder()
    }

    /// Adopts a migrated stream: appends a fresh generator for `spec`
    /// (typically a [`retire_stream`](Self::retire_stream) remainder from
    /// another node) seeded by `rng`, and returns its local index. The new
    /// stream issues nothing until [`kickoff`](Self::kickoff) is called.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid.
    pub fn inject_stream(&mut self, spec: StreamSpec, rng: SimRng) -> StreamIdx {
        self.streams.push(StreamState::new(spec, rng));
        self.outstanding.push(0);
        self.completed.push(0);
        self.streams.len() - 1
    }

    /// Issues the first request of an injected stream (closed-loop restart
    /// after migration). Returns `None` if the stream is exhausted or its
    /// window is already full.
    pub fn kickoff(&mut self, stream: StreamIdx) -> Option<ClientRequest> {
        self.try_issue(stream)
    }

    /// Total requests still in flight.
    pub fn total_outstanding(&self) -> u64 {
        self.outstanding.iter().map(|&o| o as u64).sum()
    }

    /// `true` once every stream is exhausted and nothing is in flight.
    pub fn finished(&self) -> bool {
        self.total_outstanding() == 0 && self.streams.iter().all(|s| s.exhausted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n_streams: usize, reqs: u64, window: u32) -> ClientSet {
        let specs = (0..n_streams)
            .map(|i| StreamSpec::sequential(0, i as u64 * 1_000_000, 128, reqs))
            .collect();
        let mut rng = SimRng::seed_from(3);
        ClientSet::new(specs, window, &mut rng)
    }

    #[test]
    fn initial_burst_fills_windows() {
        let mut c = set(5, 10, 1);
        let burst = c.initial_requests();
        assert_eq!(burst.len(), 5);
        assert_eq!(c.total_outstanding(), 5);
        // Each stream contributed exactly one request at its own offset.
        for (i, r) in burst.iter().enumerate() {
            assert_eq!(r.stream, i);
            assert_eq!(r.lba, i as u64 * 1_000_000);
        }
    }

    #[test]
    fn closed_loop_window_respected() {
        let mut c = set(2, 100, 3);
        let burst = c.initial_requests();
        assert_eq!(burst.len(), 6);
        // Completing one opens exactly one slot.
        let next = c.on_complete(0).expect("more requests remain");
        assert_eq!(next.stream, 0);
        assert_eq!(c.total_outstanding(), 6);
    }

    #[test]
    fn streams_drain_to_finished() {
        let mut c = set(3, 4, 1);
        let mut inflight: Vec<ClientRequest> = c.initial_requests();
        let mut served = 0;
        while let Some(r) = inflight.pop() {
            served += 1;
            if let Some(next) = c.on_complete(r.stream) {
                inflight.push(next);
            }
        }
        assert_eq!(served, 12);
        assert!(c.finished());
        for s in 0..3 {
            assert_eq!(c.completed(s), 4);
        }
    }

    #[test]
    fn requests_within_a_stream_are_sequential() {
        let mut c = set(1, 5, 1);
        let mut last_end = None;
        let mut r = c.initial_requests().pop().unwrap();
        loop {
            if let Some(e) = last_end {
                assert_eq!(r.lba, e);
            }
            last_end = Some(r.lba + r.blocks);
            match c.on_complete(r.stream) {
                Some(next) => r = next,
                None => break,
            }
        }
        assert!(c.finished());
    }

    #[test]
    fn retire_and_inject_conserve_the_workload() {
        // Two client sets model a source and a target node.
        let mut src = set(2, 10, 1);
        let mut dst = set(1, 10, 1);
        let mut inflight = src.initial_requests();
        assert_eq!(inflight.len(), 2);
        // Complete one request on stream 0, leaving 1 in flight + 8 unissued.
        let r = inflight.remove(0);
        let refill = src.on_complete(r.stream).unwrap();
        assert_eq!(refill.stream, 0);

        let rem = src.retire_stream(0).expect("8 requests left to migrate");
        assert_eq!(rem.num_requests, 8);
        assert!(!src.stream_live(0), "donor stream is exhausted in place");
        assert_eq!(src.live_count(), 1);
        // The in-flight request still completes at the source, then stops.
        assert!(src.on_complete(0).is_none());
        assert_eq!(src.completed(0), 2);

        // The target adopts the remainder and restarts the closed loop.
        let slot = dst.inject_stream(rem, SimRng::seed_from(9));
        assert_eq!(slot, 1);
        assert!(dst.stream_live(slot));
        let first = dst.kickoff(slot).expect("injected stream issues");
        assert_eq!(first.stream, slot);
        assert_eq!(first.lba, rem.start);
        // Window of 1: a second kickoff is refused until completion.
        assert!(dst.kickoff(slot).is_none());
        // Drain the migrated stream: exactly the 8 migrated requests run.
        let mut served = 1;
        while dst.on_complete(slot).is_some() {
            served += 1;
        }
        assert_eq!(served, 8);
        assert_eq!(dst.completed(slot), 8);
    }

    #[test]
    fn retire_exhausted_stream_is_none() {
        let mut c = set(1, 1, 1);
        let _ = c.initial_requests();
        assert!(c.retire_stream(0).is_none(), "no unissued requests left");
    }

    #[test]
    #[should_panic(expected = "completion without outstanding")]
    fn double_completion_panics() {
        let mut c = set(1, 5, 1);
        let _ = c.initial_requests();
        let _ = c.on_complete(0);
        // Stream 0 has one outstanding again (refilled); drain it twice.
        let _ = c.on_complete(0);
        let _ = c.on_complete(0);
        let _ = c.on_complete(0);
        let _ = c.on_complete(0);
        let _ = c.on_complete(0); // exhausted: nothing outstanding now
        let _ = c.on_complete(0);
    }
}
