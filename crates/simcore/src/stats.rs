//! Measurement utilities: online moments, latency histograms, throughput meters.

use crate::time::{SimDuration, SimTime};

/// Online mean / variance / extrema (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use seqio_simcore::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [1.0, 2.0, 3.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample seen, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-layout log-scale latency histogram.
///
/// Buckets are powers of two in nanoseconds from 1 µs up to ~17 s, which is
/// ample for disk latencies; quantiles are estimated at bucket upper bounds.
///
/// # Examples
///
/// ```
/// use seqio_simcore::{LatencyHistogram, SimDuration};
///
/// let mut h = LatencyHistogram::new();
/// for ms in 1..=100 {
///     h.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 100);
/// assert!(h.quantile(0.5).unwrap() >= SimDuration::from_millis(32));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// bucket i holds samples in (2^(i-1), 2^i] microseconds-ish space;
    /// concretely: upper bound of bucket i = 1024ns << i.
    buckets: Vec<u64>,
    count: u64,
    sum: SimDuration,
    max: SimDuration,
}

const BUCKETS: usize = 25; // 1us << 24 ≈ 17.2 s

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: SimDuration::ZERO,
            max: SimDuration::ZERO,
        }
    }

    fn bucket_for(d: SimDuration) -> usize {
        let ns = d.as_nanos().max(1);
        // Index of the first bucket whose upper bound (1024 << i) is >= ns,
        // i.e. ceil(log2(ns)) - 10 clamped to the bucket range. `ns - 1`
        // makes exact powers of two land in the lower bucket (1024 << i is
        // an inclusive upper bound).
        let ceil_log2 = (64 - (ns - 1).leading_zeros()) as usize;
        ceil_log2.saturating_sub(10).min(BUCKETS - 1)
    }

    /// Upper bound of bucket `i`.
    fn bucket_upper(i: usize) -> SimDuration {
        SimDuration::from_nanos(1024u64 << i)
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.buckets[Self::bucket_for(d)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(d);
        if d > self.max {
            self.max = d;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of all recorded samples.
    pub fn mean(&self) -> SimDuration {
        match self.sum.as_nanos().checked_div(self.count) {
            Some(ns) => SimDuration::from_nanos(ns),
            None => SimDuration::ZERO,
        }
    }

    /// Exact maximum sample.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Estimated `q`-quantile (bucket upper bound), or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile: q must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            acc += n;
            if acc >= target {
                return Some(Self::bucket_upper(i));
            }
        }
        Some(Self::bucket_upper(BUCKETS - 1))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// Counts bytes delivered over a measurement window and reports MB/s.
///
/// Matches the paper's methodology: per-stream meters are summed to obtain
/// disk/system throughput.
///
/// # Examples
///
/// ```
/// use seqio_simcore::{ThroughputMeter, SimTime, SimDuration};
///
/// let mut m = ThroughputMeter::new();
/// m.start(SimTime::ZERO);
/// m.record_bytes(10 << 20);
/// m.stop(SimTime::ZERO + SimDuration::from_secs(1));
/// assert!((m.mbytes_per_sec() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    bytes: u64,
    started: Option<SimTime>,
    stopped: Option<SimTime>,
}

impl ThroughputMeter {
    /// Creates an idle meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins (or restarts) the measurement window, clearing counters.
    pub fn start(&mut self, at: SimTime) {
        self.bytes = 0;
        self.started = Some(at);
        self.stopped = None;
    }

    /// Ends the measurement window.
    ///
    /// # Panics
    ///
    /// Panics if the meter was never started or `at` precedes the start.
    pub fn stop(&mut self, at: SimTime) {
        let s = self.started.expect("ThroughputMeter::stop before start");
        assert!(at >= s, "stop before start");
        self.stopped = Some(at);
    }

    /// Adds bytes to the window (ignored before `start`).
    pub fn record_bytes(&mut self, n: u64) {
        if self.started.is_some() && self.stopped.is_none() {
            self.bytes += n;
        }
    }

    /// Bytes recorded inside the window.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Window length (zero if not started/stopped).
    pub fn window(&self) -> SimDuration {
        match (self.started, self.stopped) {
            (Some(s), Some(e)) => e.duration_since(s),
            _ => SimDuration::ZERO,
        }
    }

    /// Throughput in MBytes/s over the closed window (0 if degenerate).
    pub fn mbytes_per_sec(&self) -> f64 {
        let w = self.window().as_secs_f64();
        if w <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / (1024.0 * 1024.0) / w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-optimization linear scan, kept as the reference oracle for
    /// `bucket_for`.
    fn bucket_for_linear(d: SimDuration) -> usize {
        let ns = d.as_nanos().max(1);
        let mut i = 0usize;
        while i + 1 < BUCKETS && (1024u64 << i) < ns {
            i += 1;
        }
        i
    }

    #[test]
    fn bucket_for_matches_linear_scan_across_full_range() {
        // Every power of two (and its neighbours) across the whole u64
        // range, including 0, 1, u64::MAX.
        let mut probes = vec![0u64, 1, 2, u64::MAX, u64::MAX - 1];
        for shift in 0..64 {
            let p = 1u64 << shift;
            probes.extend([p.saturating_sub(1), p, p.saturating_add(1)]);
        }
        // A dense sweep through the first few buckets where requests live.
        probes.extend(1..=16_384u64);
        // Coarser deterministic sweep further out.
        let mut v = 16_384u64;
        while v < 1u64 << 40 {
            probes.push(v);
            probes.push(v + v / 3);
            v = v.saturating_mul(2);
        }
        for ns in probes {
            let d = SimDuration::from_nanos(ns);
            assert_eq!(
                LatencyHistogram::bucket_for(d),
                bucket_for_linear(d),
                "bucket mismatch at {ns} ns"
            );
        }
    }

    #[test]
    fn bucket_for_boundary_values() {
        // Inclusive upper bounds: exactly 1024 << i stays in bucket i.
        assert_eq!(LatencyHistogram::bucket_for(SimDuration::from_nanos(0)), 0);
        assert_eq!(LatencyHistogram::bucket_for(SimDuration::from_nanos(1)), 0);
        assert_eq!(LatencyHistogram::bucket_for(SimDuration::from_nanos(1024)), 0);
        assert_eq!(LatencyHistogram::bucket_for(SimDuration::from_nanos(1025)), 1);
        assert_eq!(LatencyHistogram::bucket_for(SimDuration::from_nanos(2048)), 1);
        assert_eq!(LatencyHistogram::bucket_for(SimDuration::from_nanos(u64::MAX)), BUCKETS - 1);
    }

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_matches_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &v in &data {
            whole.record(v);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &v in &data[..37] {
            a.record(v);
        }
        for &v in &data[37..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn histogram_quantiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        for us in [10u64, 100, 1_000, 10_000, 100_000] {
            for _ in 0..10 {
                h.record(SimDuration::from_micros(us));
            }
        }
        let q10 = h.quantile(0.1).unwrap();
        let q50 = h.quantile(0.5).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q10 <= q50 && q50 <= q99);
        assert_eq!(h.count(), 50);
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_millis(10));
        h.record(SimDuration::from_millis(30));
        assert_eq!(h.mean(), SimDuration::from_millis(20));
        assert_eq!(h.max(), SimDuration::from_millis(30));
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), SimDuration::from_millis(100));
    }

    #[test]
    fn histogram_empty_quantile_none() {
        assert_eq!(LatencyHistogram::new().quantile(0.5), None);
    }

    #[test]
    fn meter_computes_mb_per_s() {
        let mut m = ThroughputMeter::new();
        m.record_bytes(999); // before start: ignored
        m.start(SimTime::from_nanos(0));
        m.record_bytes(50 << 20);
        m.stop(SimTime::ZERO + SimDuration::from_secs(2));
        m.record_bytes(999); // after stop: ignored
        assert_eq!(m.bytes(), 50 << 20);
        assert!((m.mbytes_per_sec() - 25.0).abs() < 1e-9);
    }
}
