//! Edge-case audit of the CSV/JSONL parsers: `trace::from_csv` and
//! `span::spans_from_csv` must handle degenerate inputs — empty files,
//! header-only files, trailing newlines, mid-file corruption — with
//! errors, never panics, and never silently dropped rows.

use seqio_node::span::{spans_from_csv, spans_to_csv};
use seqio_node::trace::{from_csv, to_csv};
use seqio_node::{SpanPhase, TraceRecord};
use seqio_simcore::SimTime;

fn trace_rec(stream: usize) -> TraceRecord {
    TraceRecord {
        stream,
        disk: 0,
        lba: stream as u64 * 4096,
        blocks: 128,
        sent: SimTime::from_nanos(stream as u64 * 1_000),
        completed: SimTime::from_nanos(stream as u64 * 1_000 + 250_000),
        from_memory: false,
    }
}

fn span_line(delivered_ns: u64) -> String {
    // stream,disk,lba,blocks,from_memory,retries,timed_out + 7 stamps
    // (enqueued first, delivered last).
    format!("0,0,0,128,true,0,false,1000,,,,,,{delivered_ns}")
}

#[test]
fn empty_and_whitespace_files_parse_to_nothing() {
    assert_eq!(from_csv("").unwrap(), vec![]);
    assert_eq!(from_csv("\n\n  \n").unwrap(), vec![]);
    assert_eq!(spans_from_csv("").unwrap(), vec![]);
    assert_eq!(spans_from_csv("\n\n  \n").unwrap(), vec![]);
}

#[test]
fn header_only_files_parse_to_nothing() {
    let trace_header = to_csv(&[]);
    assert!(trace_header.starts_with("stream,"));
    assert_eq!(from_csv(&trace_header).unwrap(), vec![]);
    // With and without the trailing newline.
    assert_eq!(from_csv(trace_header.trim_end()).unwrap(), vec![]);

    let span_header = spans_to_csv(&[]);
    assert!(span_header.starts_with("stream,"));
    assert_eq!(spans_from_csv(&span_header).unwrap(), vec![]);
    assert_eq!(spans_from_csv(span_header.trim_end()).unwrap(), vec![]);
}

#[test]
fn trailing_newlines_do_not_add_rows() {
    let csv = to_csv(&[trace_rec(0), trace_rec(1)]);
    assert!(csv.ends_with('\n'));
    assert_eq!(from_csv(&csv).unwrap().len(), 2);
    assert_eq!(from_csv(csv.trim_end()).unwrap().len(), 2);
    assert_eq!(from_csv(&format!("{csv}\n\n")).unwrap().len(), 2);

    let spans = spans_from_csv(&span_line(2_000)).unwrap();
    let csv = spans_to_csv(&spans);
    assert!(csv.ends_with('\n'));
    assert_eq!(spans_from_csv(&csv).unwrap().len(), 1);
    assert_eq!(spans_from_csv(csv.trim_end()).unwrap().len(), 1);
    assert_eq!(spans_from_csv(&format!("{csv}\n\n")).unwrap().len(), 1);
}

#[test]
fn field_count_mismatch_mid_file_names_the_line() {
    // A good row, then a truncated one: the error carries the 1-based
    // line number of the corruption (header is line 1).
    let mut csv = to_csv(&[trace_rec(0), trace_rec(1)]);
    csv.push_str("7,0,0,128\n");
    let err = from_csv(&csv).unwrap_err();
    assert!(err.contains("line 4"), "{err}");
    assert!(err.contains("expected 8 fields"), "{err}");

    let good = span_line(2_000);
    let n_fields = 7 + SpanPhase::COUNT;
    let csv = format!("{good}\n{good}\n0,0,0\n");
    let err = spans_from_csv(&csv).unwrap_err();
    assert!(err.contains("line 3"), "{err}");
    assert!(err.contains(&format!("expected {n_fields} fields")), "{err}");

    // An extra field is just as corrupt as a missing one.
    let err = from_csv("0,0,0,128,0,100000,100.0,true,oops").unwrap_err();
    assert!(err.contains("expected 8 fields"), "{err}");
}

#[test]
fn non_finite_latency_is_rejected_not_accepted() {
    // NaN parses as a valid f64 and defeats any `>` tolerance check, so
    // the parser must reject non-finite latencies explicitly.
    for bad in ["NaN", "inf", "-inf"] {
        let line = format!("0,0,0,128,0,100000,{bad},true");
        let err = from_csv(&line).unwrap_err();
        assert!(err.contains("latency_us"), "{bad}: {err}");
    }
}

#[test]
fn span_delivery_before_enqueue_is_an_error_not_a_panic() {
    // delivered (100 ns) < enqueued (1000 ns): without parser validation
    // this record would panic later in SpanRecord::total().
    let err = spans_from_csv(&span_line(100)).unwrap_err();
    assert!(err.contains("delivery precedes enqueue"), "{err}");
    // Equal stamps (zero-latency memory hit) are fine.
    let spans = spans_from_csv(&span_line(1_000)).unwrap();
    assert_eq!(spans[0].total(), seqio_simcore::SimDuration::ZERO);
}

#[test]
fn a_body_row_that_looks_like_a_header_is_not_skipped() {
    // Only line 1 may be a header; a header-ish line later is corrupt.
    let csv = format!(
        "{}stream,disk,lba,blocks,sent_ns,completed_ns,latency_us,from_memory\n",
        to_csv(&[trace_rec(0)])
    );
    let err = from_csv(&csv).unwrap_err();
    assert!(err.contains("line 3"), "{err}");
}
