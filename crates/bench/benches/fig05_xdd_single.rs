//! Figure 5 — xdd throughput with a single (real) disk.
//!
//! Paper: the real-system counterpart of Figure 4 — xdd threads at 1 GByte
//! intervals on one SATA disk, sweeping request size for 1–50 streams. The
//! disk's segment size is fixed (a real drive), so small requests do better
//! than in Figure 4 thanks to firmware prefetch into the fixed segments.

use seqio_bench::{quick_mode, window_secs, Figure, Grid};
use seqio_node::{CostModel, Experiment, Placement};
use seqio_simcore::units::{format_bytes, GIB, KIB};

fn main() {
    let (warmup, duration) = window_secs((2, 3), (4, 8));
    let request_sizes: Vec<u64> = if quick_mode() {
        vec![8 * KIB, 64 * KIB, 256 * KIB]
    } else {
        vec![8 * KIB, 16 * KIB, 64 * KIB, 128 * KIB, 256 * KIB]
    };
    let stream_counts: Vec<usize> =
        if quick_mode() { vec![1, 20, 50] } else { vec![1, 10, 20, 30, 50] };

    let mut grid = Grid::new();
    for &n in &stream_counts {
        let label = format!("{n} Stream{}", if n == 1 { "" } else { "s" });
        for &req in &request_sizes {
            grid = grid.point(
                &label,
                format_bytes(req),
                Experiment::builder()
                    .streams_per_disk(n)
                    .request_size(req)
                    .placement(Placement::Interval(GIB))
                    .costs(CostModel::local_xdd()) // xdd runs on the host itself
                    .warmup(warmup)
                    .duration(duration)
                    .seed(55)
                    .build(),
            );
        }
    }

    let mut fig = Figure::new(
        "Figure 5",
        "Xdd throughput with a single disk (fixed segments, 1GB intervals)",
        "Request Size",
        "Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("fig05_xdd_single");

    // Shape checks: degradation with stream count (as in Fig. 4), but the
    // fixed-segment prefetch keeps small requests faster than the Fig. 4
    // no-prefetch configuration (paper's observation).
    let one = fig.series.first().unwrap().ys();
    let many = fig.series.last().unwrap().ys();
    assert!(one[0] > 2.0 * many[0], "many streams must be far slower than one");
    assert!(one[0] > 15.0, "fixed-segment prefetch should keep 1-stream small reads fast");
    println!("shape ok: 1 stream {:.0} MB/s vs 50 streams {:.0} MB/s at 8K", one[0], many[0]);
}
