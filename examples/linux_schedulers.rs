//! Kernel I/O scheduler face-off (the Figure 2 scenario): xdd-style 4 KiB
//! sequential readers over one disk, under noop, deadline, CFQ and
//! anticipatory block-layer scheduling.
//!
//! ```text
//! cargo run --release --example linux_schedulers
//! ```

use seqio::hostsched::{ReadaheadConfig, SchedKind};
use seqio::node::CostModel;
use seqio::prelude::*;
use seqio::simcore::units::KIB;

fn main() {
    let stream_counts = [1usize, 8, 32, 128];
    let kinds = [SchedKind::Noop, SchedKind::Deadline, SchedKind::Cfq, SchedKind::Anticipatory];

    println!("4 KiB sequential reads through a Linux-like page cache + block layer\n");
    print!("{:>14}", "streams");
    for k in kinds {
        print!("{:>14}", k.name());
    }
    println!();

    for n in stream_counts {
        print!("{n:>14}");
        for k in kinds {
            let r = Scenario::builder()
                .streams_per_disk(n)
                .request_size(4 * KIB)
                .frontend(Frontend::Linux { scheduler: k, readahead: ReadaheadConfig::default() })
                .costs(CostModel::local_xdd())
                .warmup(SimDuration::from_secs(2))
                .duration(SimDuration::from_secs(4))
                .seed(5)
                .build()
                .expect("valid scenario")
                .run_node()
                .expect("single node");
            print!("{:>14.1}", r.total_throughput_mbs());
        }
        println!();
    }

    println!(
        "\nThe anticipatory scheduler's deceptive-idleness wait keeps each reader's \
         fetches contiguous and wins at every concurrency level — yet all of them \
         fall off a cliff as readers multiply. That residual sensitivity is the \
         problem the paper's stream scheduler removes (see `quickstart`)."
    );
}
