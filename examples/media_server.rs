//! A media-server capacity-planning study — the workload that motivates the
//! paper's introduction.
//!
//! A video service stores titles on an 8-disk storage node and must decide
//! how many concurrent 1 MB/s viewers it can admit. We sweep the viewer
//! count and compare the direct path against the auto-tuned stream
//! scheduler, reporting sustained throughput, per-viewer bandwidth and
//! response times.
//!
//! ```text
//! cargo run --release --example media_server
//! ```

use seqio::prelude::*;
use seqio::simcore::units::GIB;

fn main() {
    let node_memory = GIB; // the testbed's 1 GB storage node
    let shape = NodeShape::eight_disk();
    let disks = shape.total_disks();
    let per_viewer_need = 1.0; // MB/s per stream for smooth playout

    println!("8-disk storage node, 64 KiB requests, viewers spread across disks");
    println!("target per-viewer bandwidth: {per_viewer_need:.1} MB/s\n");
    println!(
        "{:>14} {:>16} {:>16} {:>12} {:>12}",
        "viewers/disk", "direct MB/s", "scheduler MB/s", "dir ok?", "sched ok?"
    );

    for viewers_per_disk in [10usize, 30, 60, 100] {
        let total = viewers_per_disk * disks;
        let warmup = SimDuration::from_secs(8);
        let duration = SimDuration::from_secs(8);

        let direct = Scenario::builder()
            .shape(shape.clone())
            .streams_per_disk(viewers_per_disk)
            .warmup(warmup)
            .duration(duration)
            .seed(42)
            .build()
            .expect("valid scenario")
            .run_node()
            .expect("single node");

        // Static auto-tuning from node memory and disk count (paper §7:
        // the system "adjusts statically to different storage node
        // configurations").
        let cfg = ServerConfig::auto_tune(node_memory, disks);
        let sched = Scenario::builder()
            .shape(shape.clone())
            .streams_per_disk(viewers_per_disk)
            .frontend(Frontend::StreamScheduler(cfg))
            .warmup(warmup)
            .duration(duration)
            .seed(42)
            .build()
            .expect("valid scenario")
            .run_node()
            .expect("single node");

        let per_dir = direct.total_throughput_mbs() / total as f64;
        let per_sched = sched.total_throughput_mbs() / total as f64;
        println!(
            "{:>14} {:>16.1} {:>16.1} {:>12} {:>12}",
            viewers_per_disk,
            direct.total_throughput_mbs(),
            sched.total_throughput_mbs(),
            if per_dir >= per_viewer_need { "yes" } else { "NO" },
            if per_sched >= per_viewer_need { "yes" } else { "NO" },
        );
    }

    println!(
        "\nWith the scheduler the node sustains high aggregate throughput however many \
         viewers share each disk — the paper's 'insensitivity' property — so capacity \
         is planned from bandwidth alone instead of a per-disk stream budget."
    );
    let cfg = ServerConfig::auto_tune(node_memory, disks);
    println!(
        "auto-tuned parameters for this node: D={}, R={}K, N={}, M={}MB",
        cfg.dispatch_streams,
        cfg.read_ahead_bytes / 1024,
        cfg.requests_per_residency,
        cfg.memory_bytes / (1024 * 1024)
    );
}
