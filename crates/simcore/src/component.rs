//! Steppable simulation components.
//!
//! A [`SimComponent`] is a self-contained discrete-event simulation that an
//! outer driver can advance in bounded time slices instead of running to
//! completion in one call. The contract exists so several components can
//! share one logical clock: a co-simulation driver advances every component
//! to a common horizon, inspects or mutates cross-component state at the
//! barrier, and repeats. Because each component still pops its own events in
//! its own deterministic order, chunked advancement is bit-identical to one
//! uninterrupted run — the barrier only pauses the component, it never
//! reorders it.
//!
//! The storage-node engine implements this trait (as `NodeSim` in
//! `seqio-node`) and the cluster layer drives K nodes in lockstep epochs on
//! top of it.

use crate::time::SimTime;

/// A discrete-event simulation that can be advanced in time slices.
///
/// # Contract
///
/// * [`init`](Self::init) is called exactly once, before any other method,
///   and schedules the component's initial events.
/// * [`peek_next_time`](Self::peek_next_time) reports when the component
///   next wants to run, or `None` once it has nothing left to do (drained,
///   or every remaining event lies beyond its own stop condition).
/// * [`advance_to`](Self::advance_to) handles, in deterministic order,
///   every pending event with timestamp `<= limit`. Calling it with
///   monotonically non-decreasing limits must produce exactly the same
///   final state as a single call with the largest limit — chunking is
///   observationally free.
///
/// # Examples
///
/// ```
/// use seqio_simcore::{SimComponent, SimTime};
///
/// /// Counts down `n` ticks, one per nanosecond.
/// #[derive(Debug)]
/// struct Countdown {
///     next: Option<SimTime>,
///     remaining: u32,
/// }
///
/// impl SimComponent for Countdown {
///     fn init(&mut self) {
///         self.next = (self.remaining > 0).then_some(SimTime::from_nanos(1));
///     }
///     fn peek_next_time(&self) -> Option<SimTime> {
///         self.next
///     }
///     fn advance_to(&mut self, limit: SimTime) {
///         while let Some(t) = self.next {
///             if t > limit {
///                 break;
///             }
///             self.remaining -= 1;
///             self.next = (self.remaining > 0).then_some(SimTime::from_nanos(t.as_nanos() + 1));
///         }
///     }
/// }
///
/// let mut c = Countdown { next: None, remaining: 3 };
/// c.init();
/// c.advance_to(SimTime::from_nanos(2)); // handles ticks at 1 ns and 2 ns
/// assert_eq!(c.remaining, 1);
/// c.advance_to(SimTime::MAX);
/// assert_eq!(c.remaining, 0);
/// assert_eq!(c.peek_next_time(), None);
/// ```
pub trait SimComponent {
    /// Schedules the component's initial events. Called exactly once.
    fn init(&mut self);

    /// The timestamp of the next event the component would handle, or
    /// `None` when it has nothing left to do.
    fn peek_next_time(&self) -> Option<SimTime>;

    /// Handles every pending event with timestamp `<= limit`, in the
    /// component's own deterministic order.
    fn advance_to(&mut self, limit: SimTime);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference component: an event queue of u32 payloads summed on pop.
    #[derive(Debug, Default)]
    struct Summer {
        q: crate::calendar::EventQueue<u32>,
        sum: u64,
        initialized: bool,
    }

    impl SimComponent for Summer {
        fn init(&mut self) {
            self.initialized = true;
            for i in 1..=10u64 {
                self.q.push(SimTime::from_nanos(i * 100), i as u32);
            }
        }
        fn peek_next_time(&self) -> Option<SimTime> {
            self.q.peek_time()
        }
        fn advance_to(&mut self, limit: SimTime) {
            while let Some(t) = self.q.peek_time() {
                if t > limit {
                    break;
                }
                let (_, v) = self.q.pop().expect("peeked");
                self.sum += v as u64;
            }
        }
    }

    #[test]
    fn chunked_advance_equals_one_shot() {
        let mut chunked = Summer::default();
        chunked.init();
        let mut t = SimTime::ZERO;
        while chunked.peek_next_time().is_some() {
            t += crate::time::SimDuration::from_nanos(250);
            chunked.advance_to(t);
        }

        let mut oneshot = Summer::default();
        oneshot.init();
        oneshot.advance_to(SimTime::MAX);

        assert_eq!(chunked.sum, oneshot.sum);
        assert_eq!(chunked.sum, 55);
        assert_eq!(chunked.peek_next_time(), None);
    }

    #[test]
    fn advance_is_inclusive_of_the_limit() {
        let mut s = Summer::default();
        s.init();
        s.advance_to(SimTime::from_nanos(300));
        assert_eq!(s.sum, 1 + 2 + 3);
        assert_eq!(s.peek_next_time(), Some(SimTime::from_nanos(400)));
    }
}
