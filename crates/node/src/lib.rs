//! # seqio-node
//!
//! Full storage-node simulation for the `seqio` reproduction of the
//! ICDCS 2009 sequential-streams paper: closed-loop clients over a
//! header-only network, a pluggable request path (direct, the paper's
//! stream scheduler, or a Linux-like kernel path), controllers and disks,
//! all driven by one deterministic event loop.
//!
//! The main entry point is [`Experiment`]: describe the node shape, the
//! workload and the front end, then [`run`](Experiment::run) it and read
//! throughput/latency off the [`RunResult`].
//!
//! # Examples
//!
//! ```
//! use seqio_node::{Experiment, Frontend, NodeShape};
//! use seqio_simcore::SimDuration;
//!
//! let result = Experiment::builder()
//!     .shape(NodeShape::single_disk())
//!     .streams_per_disk(10)
//!     .request_size(64 * 1024)
//!     .frontend(Frontend::stream_scheduler_with_readahead(1024 * 1024))
//!     .warmup(SimDuration::from_millis(200))
//!     .duration(SimDuration::from_millis(800))
//!     .seed(7)
//!     .run();
//! assert!(result.total_throughput_mbs() > 5.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod calibration;
mod experiment;
mod sim;
pub mod span;
pub mod sweep;
mod system;
pub mod trace;

pub use calibration::CostModel;
pub use experiment::{
    run_node, Experiment, ExperimentBuilder, Frontend, NodeShape, Placement, RunResult,
};
pub use seqio_simcore::{
    FaultPlan, KernelProfile, MetricSeries, ObsConfig, ProfConfig, RetryPolicy, SeqioError,
    SimComponent, SpanPhase,
};
pub use sim::{HealthSnapshot, NodeSim, StreamHandoff};
pub use span::{PhaseBreakdown, SpanRecord};
pub use sweep::{PointOutcome, Sweep, SweepBuilder, SweepReport};
pub use trace::TraceRecord;
