//! Parameter exploration: how `R` (read-ahead) and `M` (staging memory)
//! trade off at a fixed stream count — the decision surface behind the
//! paper's Figures 10 and 11.
//!
//! ```text
//! cargo run --release --example parameter_sweep
//! ```

use seqio::core::ServerConfig;
use seqio::node::{Experiment, Frontend};
use seqio::simcore::units::{format_bytes, KIB, MIB};
use seqio::simcore::SimDuration;

fn main() {
    let streams = 60;
    let readaheads = [256 * KIB, MIB, 4 * MIB, 8 * MIB];
    let memories = [16 * MIB, 64 * MIB, 256 * MIB];

    println!("60 streams, one disk, 64 KiB requests; D derived as M/(R*N), N = 1\n");
    print!("{:>10}", "R \\ M");
    for m in memories {
        print!("{:>12}", format_bytes(m));
    }
    println!();

    for ra in readaheads {
        print!("{:>10}", format_bytes(ra));
        for m in memories {
            if m < ra {
                print!("{:>12}", "-");
                continue;
            }
            let cfg = ServerConfig::memory_limited(m, ra, 1);
            let r = Experiment::builder()
                .streams_per_disk(streams)
                .frontend(Frontend::StreamScheduler(cfg))
                .warmup(SimDuration::from_secs(5))
                .duration(SimDuration::from_secs(6))
                .seed(9)
                .run();
            print!("{:>12.1}", r.total_throughput_mbs());
        }
        println!();
    }

    println!(
        "\nReading the table: moving right (more memory, more dispatched streams) helps \
         far less than moving down (larger read-ahead per dispatched stream) — the \
         paper's central Figure 11 observation. Even 16 MB of staging with 8 MB \
         read-ahead outperforms 256 MB of staging at 256 KB."
    );
}
