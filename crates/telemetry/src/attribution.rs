//! Tail attribution: *where* do the slowest sessions spend their time?
//!
//! A p99.9 number says the tail is slow; attribution says why. Over a
//! set of correlated [`SessionTrace`]s, [`TailAttribution::compute`]
//! selects the sessions inside a latency percentile band (p99–p100 by
//! default), decomposes each one's latency into the additive buckets of
//! [`SessionTrace::decompose`] — arrival wait, the seven span phases,
//! the inter-request gap — and reports:
//!
//! * the **phase-share table**: each bucket's share of all tail time,
//!   summing to exactly 100%;
//! * **dominant-phase counts**: for each tail session, the single bucket
//!   that consumed most of its latency — the histogram an operator scans
//!   first ("the tail is 70% disk-wait sessions");
//! * **worst offenders**: the slowest few sessions verbatim, with their
//!   node paths, as entry points for trace-level digging.
//!
//! Everything is a pure function of the traces: deterministic, no
//! clock, no sampling.

use std::fmt::Write as _;

use seqio_cluster::percentile;
use seqio_simcore::SimDuration;

use crate::correlate::{bucket_names, SessionTrace, BUCKETS};
use crate::json::escape;

/// One bucket's share of the tail's total attributed time.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseShare {
    /// Bucket name (see [`bucket_names`]).
    pub name: &'static str,
    /// Share of all tail time, in percent. Shares sum to 100.
    pub share_pct: f64,
    /// Absolute time in the bucket summed over tail sessions, ms.
    pub total_ms: f64,
}

/// One worst-offender session from the tail.
#[derive(Debug, Clone, PartialEq)]
pub struct TailExemplar {
    /// Global session id.
    pub session: usize,
    /// End-to-end latency in milliseconds.
    pub latency_ms: f64,
    /// The bucket that consumed most of this session's latency.
    pub dominant: &'static str,
    /// Nodes the session visited (more than one = migrated).
    pub node_path: Vec<usize>,
}

/// Attribution of a latency percentile band over completed sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct TailAttribution {
    /// Lower percentile bound of the band, in `[0, 1]`.
    pub lo: f64,
    /// Upper percentile bound of the band, in `[0, 1]`.
    pub hi: f64,
    /// Completed sessions the percentiles were computed over.
    pub completed: usize,
    /// Sessions inside the band.
    pub tail_sessions: usize,
    /// The band's entry latency (the `lo` percentile), ms.
    pub threshold_ms: f64,
    /// Per-bucket shares, in [`bucket_names`] order; `share_pct` sums
    /// to exactly 100.
    pub shares: Vec<PhaseShare>,
    /// `(bucket, sessions)` counts of each tail session's dominant
    /// bucket, descending; buckets dominating no session are omitted.
    pub dominant: Vec<(&'static str, usize)>,
    /// The slowest sessions in the band, worst first (at most five).
    pub exemplars: Vec<TailExemplar>,
}

impl TailAttribution {
    /// Attributes the `[lo, hi]` latency percentile band (e.g.
    /// `(0.999, 1.0)` for "the p99.9 tail"). Returns `None` when no
    /// session completed. `lo`/`hi` are clamped into `[0, 1]`; an
    /// inverted band yields the `lo` percentile alone.
    pub fn compute(traces: &[SessionTrace], lo: f64, hi: f64) -> Option<TailAttribution> {
        let mut completed: Vec<(SimDuration, &SessionTrace)> =
            traces.iter().filter_map(|t| t.latency().map(|l| (l, t))).collect();
        if completed.is_empty() {
            return None;
        }
        completed.sort_by_key(|(l, t)| (*l, t.session));
        let sorted: Vec<SimDuration> = completed.iter().map(|(l, _)| *l).collect();
        let floor = percentile(&sorted, lo).expect("non-empty");
        let ceil = percentile(&sorted, hi.max(lo)).expect("non-empty");
        let tail: Vec<&(SimDuration, &SessionTrace)> =
            completed.iter().filter(|(l, _)| *l >= floor && *l <= ceil).collect();

        let names = bucket_names();
        let mut totals = [SimDuration::ZERO; BUCKETS];
        let mut dominant_counts = [0usize; BUCKETS];
        let mut exemplars: Vec<TailExemplar> = Vec::new();
        for (latency, trace) in tail.iter().copied() {
            let parts = trace.decompose().expect("tail traces completed");
            let mut dom = 0;
            for (b, d) in parts.iter().enumerate() {
                totals[b] += *d;
                if *d > parts[dom] {
                    dom = b;
                }
            }
            dominant_counts[dom] += 1;
            exemplars.push(TailExemplar {
                session: trace.session,
                latency_ms: latency.as_millis_f64(),
                dominant: names[dom],
                node_path: trace.node_path.clone(),
            });
        }
        exemplars.sort_by(|a, b| {
            b.latency_ms.partial_cmp(&a.latency_ms).unwrap().then(a.session.cmp(&b.session))
        });
        exemplars.truncate(5);

        let grand: f64 = totals.iter().map(|d| d.as_millis_f64()).sum();
        let shares: Vec<PhaseShare> = names
            .iter()
            .zip(totals)
            .enumerate()
            .map(|(b, (&name, total))| {
                // A zero-latency tail has nothing to attribute; park the
                // whole 100% in the gap bucket so shares stay a
                // distribution.
                let share_pct = if grand > 0.0 {
                    total.as_millis_f64() / grand * 100.0
                } else if b == BUCKETS - 1 {
                    100.0
                } else {
                    0.0
                };
                PhaseShare { name, share_pct, total_ms: total.as_millis_f64() }
            })
            .collect();
        let mut dominant: Vec<(&'static str, usize)> = names
            .iter()
            .zip(dominant_counts)
            .filter(|(_, c)| *c > 0)
            .map(|(&n, c)| (n, c))
            .collect();
        dominant.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

        Some(TailAttribution {
            lo: lo.clamp(0.0, 1.0),
            hi: hi.clamp(lo.clamp(0.0, 1.0), 1.0),
            completed: completed.len(),
            tail_sessions: tail.len(),
            threshold_ms: floor.as_millis_f64(),
            shares,
            dominant,
            exemplars,
        })
    }

    /// Renders the attribution as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tail band p{:.4}..p{:.4}: {} of {} completed sessions, entry latency {:.3} ms",
            self.lo * 100.0,
            self.hi * 100.0,
            self.tail_sessions,
            self.completed,
            self.threshold_ms
        );
        let _ = writeln!(out, "{:<20} {:>9} {:>14}", "bucket", "share", "tail total");
        for s in &self.shares {
            let _ = writeln!(out, "{:<20} {:>8.2}% {:>11.3} ms", s.name, s.share_pct, s.total_ms);
        }
        let _ = writeln!(out, "dominant buckets:");
        for (name, count) in &self.dominant {
            let _ = writeln!(out, "  {name:<18} {count} sessions");
        }
        let _ = writeln!(out, "worst offenders:");
        for e in &self.exemplars {
            let _ = writeln!(
                out,
                "  session {:>6}  {:>10.3} ms  dominant {:<18} nodes {:?}",
                e.session, e.latency_ms, e.dominant, e.node_path
            );
        }
        out
    }

    /// Renders the attribution as one JSON object (the `tail_probe.json`
    /// artifact format).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"lo\":{},\"hi\":{},\"completed\":{},\"tail_sessions\":{},\"threshold_ms\":{}",
            self.lo, self.hi, self.completed, self.tail_sessions, self.threshold_ms
        );
        out.push_str(",\"shares\":[");
        for (i, s) in self.shares.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"bucket\":\"{}\",\"share_pct\":{},\"total_ms\":{}}}",
                escape(s.name),
                s.share_pct,
                s.total_ms
            );
        }
        out.push_str("],\"dominant\":[");
        for (i, (name, count)) in self.dominant.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"bucket\":\"{}\",\"sessions\":{count}}}", escape(name));
        }
        out.push_str("],\"exemplars\":[");
        for (i, e) in self.exemplars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"session\":{},\"latency_ms\":{},\"dominant\":\"{}\",\"nodes\":{:?}}}",
                e.session,
                e.latency_ms,
                escape(e.dominant),
                e.node_path
            );
        }
        out.push_str("]}");
        out
    }

    /// Sum of all shares, in percent — exactly 100 up to float rounding.
    pub fn share_sum_pct(&self) -> f64 {
        self.shares.iter().map(|s| s.share_pct).sum()
    }
}

/// Parses a percentile band spec like `p99.9`, `99.9` or `0.999` into
/// the `lo` fraction for [`TailAttribution::compute`].
///
/// # Errors
///
/// Rejects non-numeric input and values outside `(0, 100]`.
pub fn parse_percentile(spec: &str) -> Result<f64, String> {
    let raw = spec.trim().trim_start_matches(['p', 'P']);
    let v: f64 = raw.parse().map_err(|_| format!("bad percentile {spec:?}"))?;
    let frac = if v <= 1.0 { v } else { v / 100.0 };
    if !(frac > 0.0 && frac <= 1.0) {
        return Err(format!("percentile {spec:?} outside (0, 100]"));
    }
    Ok(frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio_node::SpanRecord;
    use seqio_simcore::{SimTime, SpanPhase};

    /// A one-span session arriving at `arrive_us` whose single request
    /// waits in `disk_us` of disk time and delivers at `done_us`.
    fn trace(id: usize, arrive_us: u64, enq_us: u64, disk_us: u64, done_us: u64) -> SessionTrace {
        let mut stamps = [None; SpanPhase::COUNT];
        stamps[SpanPhase::Enqueued.index()] = Some(SimTime::from_nanos(enq_us * 1000));
        stamps[SpanPhase::DiskComplete.index()] =
            Some(SimTime::from_nanos((enq_us + disk_us) * 1000));
        stamps[SpanPhase::Delivered.index()] = Some(SimTime::from_nanos(done_us * 1000));
        SessionTrace {
            session: id,
            arrival: SimTime::from_nanos(arrive_us * 1000),
            title: None,
            requests: Some(1),
            node_path: vec![0],
            spans: vec![crate::correlate::TraceSpan {
                node: 0,
                record: SpanRecord {
                    stream: id,
                    disk: 0,
                    lba: 0,
                    blocks: 16,
                    from_memory: false,
                    retries: 0,
                    timed_out: false,
                    stamps,
                },
            }],
        }
    }

    #[test]
    fn shares_sum_to_100_and_name_the_culprit() {
        // 99 fast sessions dominated by disk time, one huge straggler
        // dominated by arrival wait.
        let mut traces: Vec<SessionTrace> =
            (0..99).map(|i| trace(i, 0, 10, 500 + i as u64, 600 + i as u64)).collect();
        traces.push(trace(99, 0, 90_000, 500, 91_000));
        let att = TailAttribution::compute(&traces, 0.99, 1.0).unwrap();
        assert_eq!(att.completed, 100);
        assert!(att.tail_sessions >= 1 && att.tail_sessions <= 2);
        assert!((att.share_sum_pct() - 100.0).abs() < 1e-9);
        assert_eq!(att.dominant[0].0, "arrival_wait");
        assert_eq!(att.exemplars[0].session, 99);
        // The whole distribution attributes too, still summing to 100.
        let all = TailAttribution::compute(&traces, 0.0, 1.0).unwrap();
        assert_eq!(all.tail_sessions, 100);
        assert!((all.share_sum_pct() - 100.0).abs() < 1e-9);
        assert_eq!(all.dominant[0].0, "disk_complete");
    }

    #[test]
    fn empty_and_degenerate_inputs_are_total() {
        assert_eq!(TailAttribution::compute(&[], 0.999, 1.0), None);
        // A single zero-latency session: shares park in the gap bucket.
        let t = trace(0, 0, 0, 0, 0);
        let att = TailAttribution::compute(&[t], 0.999, 1.0).unwrap();
        assert_eq!(att.tail_sessions, 1);
        assert!((att.share_sum_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn json_rendering_parses_back() {
        let traces: Vec<SessionTrace> =
            (0..10).map(|i| trace(i, 0, 10, 400 + 40 * i as u64, 600 + 40 * i as u64)).collect();
        let att = TailAttribution::compute(&traces, 0.9, 1.0).unwrap();
        let v = crate::json::parse(&att.to_json()).unwrap();
        assert_eq!(v.get("completed").unwrap().as_usize(), Some(10));
        assert_eq!(v.get("shares").unwrap().as_arr().unwrap().len(), BUCKETS);
        assert!(att.to_table().contains("worst offenders"));
    }

    #[test]
    fn percentile_specs_parse() {
        assert!((parse_percentile("p99.9").unwrap() - 0.999).abs() < 1e-12);
        assert!((parse_percentile("99.9").unwrap() - 0.999).abs() < 1e-12);
        assert_eq!(parse_percentile("0.999").unwrap(), 0.999);
        assert_eq!(parse_percentile("1").unwrap(), 1.0);
        assert!(parse_percentile("0").is_err());
        assert!(parse_percentile("101").is_err());
        assert!(parse_percentile("tail").is_err());
    }
}
