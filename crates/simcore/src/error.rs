//! Typed validation errors shared across the workspace.

use std::error::Error;
use std::fmt;

/// Why a configuration or experiment specification was rejected.
///
/// Each variant identifies which layer rejected the input; the payload is
/// the human-readable constraint that failed. The enum is `#[non_exhaustive]`
/// so new layers can gain variants without breaking downstream matches.
///
/// # Examples
///
/// ```
/// use seqio_simcore::SeqioError;
///
/// let e = SeqioError::Server("memory invariant violated".into());
/// assert_eq!(e.to_string(), "invalid server config: memory invariant violated");
/// // Incremental migration: stringly-typed callers still work.
/// let s: String = e.into();
/// assert!(s.contains("memory invariant"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SeqioError {
    /// The node layout ([`NodeShape`](https://docs.rs/seqio-node)) is
    /// degenerate: no controllers, no disks.
    Shape(String),
    /// The stream-scheduler `ServerConfig` violates a constraint such as
    /// the paper's memory invariant `M >= D * R * N`.
    Server(String),
    /// The experiment specification as a whole is inconsistent.
    Experiment(String),
    /// A component model (disk, controller, read-ahead, cost model, ...)
    /// rejected its configuration.
    Component {
        /// Which component rejected the input (e.g. `"disk"`).
        component: &'static str,
        /// The violated constraint.
        reason: String,
    },
}

impl SeqioError {
    /// Wraps a component-level `Result<_, String>` validator, tagging its
    /// message with the component name. Designed for `map_err`:
    ///
    /// ```ignore
    /// self.disk.validate().map_err(SeqioError::component("disk"))?;
    /// ```
    pub fn component(name: &'static str) -> impl FnOnce(String) -> SeqioError {
        move |reason| SeqioError::Component { component: name, reason }
    }

    /// The constraint message without the layer prefix.
    pub fn reason(&self) -> &str {
        match self {
            SeqioError::Shape(r)
            | SeqioError::Server(r)
            | SeqioError::Experiment(r)
            | SeqioError::Component { reason: r, .. } => r,
        }
    }
}

impl fmt::Display for SeqioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqioError::Shape(r) => write!(f, "invalid node shape: {r}"),
            SeqioError::Server(r) => write!(f, "invalid server config: {r}"),
            SeqioError::Experiment(r) => write!(f, "invalid experiment: {r}"),
            SeqioError::Component { component, reason } => {
                write!(f, "invalid {component} config: {reason}")
            }
        }
    }
}

impl Error for SeqioError {}

impl From<SeqioError> for String {
    fn from(e: SeqioError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_by_layer() {
        assert_eq!(SeqioError::Shape("x".into()).to_string(), "invalid node shape: x");
        assert_eq!(SeqioError::Experiment("y".into()).to_string(), "invalid experiment: y");
        assert_eq!(
            SeqioError::Component { component: "disk", reason: "z".into() }.to_string(),
            "invalid disk config: z"
        );
    }

    #[test]
    fn converts_to_string_for_legacy_callers() {
        let s: String = SeqioError::Server("M too small".into()).into();
        assert_eq!(s, "invalid server config: M too small");
    }

    #[test]
    fn component_adapter_tags_map_err() {
        let r: Result<(), String> = Err("bad geometry".into());
        let e = r.map_err(SeqioError::component("disk")).unwrap_err();
        assert_eq!(e, SeqioError::Component { component: "disk", reason: "bad geometry".into() });
        assert_eq!(e.reason(), "bad geometry");
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SeqioError::Shape("no disks".into()));
    }
}
