//! # seqio-bench
//!
//! Harness utilities shared by the figure-reproduction benches: series
//! containers, aligned table printing (mirroring the paper's figures as
//! rows/columns) and CSV output under `bench_results/`.
//!
//! Each `benches/figNN_*.rs` target is a `harness = false` binary that
//! regenerates one figure of the paper; run them all with
//! `cargo bench --workspace`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod grid;

pub use grid::{Grid, GridRun};

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// One curve of a figure: a label plus `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. `"R = 8MBytes"`).
    pub label: String,
    /// Points in x order; x is kept as a display string (sizes, counts).
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series { label: label.into(), points: Vec::new() }
    }

    /// Appends a point.
    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push((x.into(), y));
    }

    /// The y values only.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.1).collect()
    }
}

/// A whole figure: title, axis names and its series.
#[derive(Debug, Clone)]
pub struct Figure {
    /// E.g. `"Figure 10"`.
    pub id: String,
    /// Caption (what the paper's figure shows).
    pub title: String,
    /// X-axis name.
    pub x_name: String,
    /// Y-axis name.
    pub y_name: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Starts an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_name: impl Into<String>,
        y_name: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_name: x_name.into(),
            y_name: y_name.into(),
            series: Vec::new(),
        }
    }

    /// Adds a finished series.
    pub fn add(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Renders the figure as an aligned text table (x values as rows,
    /// series as columns) — the same numbers the paper plots.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "   ({} vs {})", self.y_name, self.x_name);
        let xs: Vec<&str> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| x.as_str()).collect())
            .unwrap_or_default();
        let xw = self.x_name.len().max(xs.iter().map(|x| x.len()).max().unwrap_or(0)).max(4);
        let cw: Vec<usize> = self.series.iter().map(|s| s.label.len().max(8)).collect();
        let _ = write!(out, "{:>xw$}", self.x_name);
        for (s, w) in self.series.iter().zip(&cw) {
            let _ = write!(out, "  {:>w$}", s.label, w = w);
        }
        let _ = writeln!(out);
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{x:>xw$}");
            for (s, w) in self.series.iter().zip(&cw) {
                match s.points.get(i) {
                    Some((_, y)) => {
                        let _ = write!(out, "  {:>w$.2}", y, w = w);
                    }
                    None => {
                        let _ = write!(out, "  {:>w$}", "-", w = w);
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the figure as CSV (header: x, then one column per series).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_name);
        for s in &self.series {
            let _ = write!(out, ",{}", s.label.replace(',', ";"));
        }
        let _ = writeln!(out);
        let xs: Vec<&str> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| x.as_str()).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.points.get(i) {
                    Some((_, y)) => {
                        let _ = write!(out, ",{y:.4}");
                    }
                    None => out.push(','),
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Prints the table to stdout and writes `bench_results/<slug>.csv`
    /// relative to the workspace root. Returns the CSV path.
    pub fn report(&self, slug: &str) -> PathBuf {
        print!("{}", self.to_table());
        let dir = results_dir();
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{slug}.csv"));
        if let Err(e) = fs::write(&path, self.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        println!("   -> {}\n", path.display());
        path
    }
}

/// Resolves `bench_results/` at the workspace root (falls back to CWD).
pub fn results_dir() -> PathBuf {
    let mut dir = Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf();
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.join("bench_results")
}

/// `true` when the bench should run a reduced sweep (set `SEQIO_BENCH_FULL=1`
/// for the full figure).
pub fn quick_mode() -> bool {
    std::env::var("SEQIO_BENCH_FULL").map(|v| v != "1").unwrap_or(true)
}

/// Measurement windows: `(warmup, duration)` seconds, reduced in quick mode.
pub fn window_secs(
    quick: (u64, u64),
    full: (u64, u64),
) -> (seqio_simcore::SimDuration, seqio_simcore::SimDuration) {
    let (w, d) = if quick_mode() { quick } else { full };
    (seqio_simcore::SimDuration::from_secs(w), seqio_simcore::SimDuration::from_secs(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new("Figure X", "demo", "Streams", "MB/s");
        let mut a = Series::new("R = 1M");
        a.push("10", 50.0);
        a.push("100", 45.5);
        let mut b = Series::new("No RA");
        b.push("10", 8.0);
        b.push("100", 5.25);
        f.add(a);
        f.add(b);
        f
    }

    #[test]
    fn table_contains_all_points() {
        let t = sample().to_table();
        for needle in ["Figure X", "R = 1M", "No RA", "50.00", "5.25", "Streams"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn csv_round_numbers() {
        let c = sample().to_csv();
        let mut lines = c.lines();
        assert_eq!(lines.next(), Some("Streams,R = 1M,No RA"));
        assert!(lines.next().unwrap().starts_with("10,50.0000,8.0000"));
    }

    #[test]
    fn series_ys() {
        let f = sample();
        assert_eq!(f.series[0].ys(), vec![50.0, 45.5]);
    }

    #[test]
    fn results_dir_is_workspace_level() {
        let d = results_dir();
        assert!(d.ends_with("bench_results"));
        assert!(!d.to_string_lossy().contains("crates"));
    }

    #[test]
    fn ragged_series_render_dashes() {
        let mut f = Figure::new("F", "t", "x", "y");
        let mut a = Series::new("a");
        a.push("1", 1.0);
        a.push("2", 2.0);
        let mut b = Series::new("b");
        b.push("1", 1.0);
        f.add(a);
        f.add(b);
        let t = f.to_table();
        assert!(t.contains('-'), "{t}");
    }
}
