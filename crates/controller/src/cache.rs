//! Controller prefetch cache.
//!
//! Unlike the disk's fixed segments, controller memory is a pool of
//! variable-size *extents* (one per prefetch operation) replaced in FIFO
//! insertion order — the straightforward policy of an entry-level
//! controller. The paper's Figure 8 sweeps prefetch size against this
//! pool: once `streams x prefetch` exceeds the pool, extents are reclaimed
//! while their streams are still consuming them, every reclaim forces a
//! refetch that accelerates the next reclaim, and throughput collapses.

use seqio_disk::Lba;
use seqio_simcore::SimTime;

/// Description of the extent that satisfied a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentHit {
    /// First block of the extent.
    pub start: Lba,
    /// Extent length in blocks.
    pub blocks: u64,
    /// Highest block offset served so far.
    pub touched: u64,
}

/// Byte-granularity LRU extent cache.
#[derive(Debug, Clone)]
pub struct ExtentCache {
    capacity: u64,
    used: u64,
    extents: Vec<Extent>,
    evictions: u64,
    wasted_bytes: u64,
}

#[derive(Debug, Clone, Copy)]
struct Extent {
    port: usize,
    start: Lba,
    blocks: u64,
    /// Highest block offset served to a host request.
    touched: u64,
    /// Insertion instant (FIFO replacement key).
    inserted: SimTime,
}

const BLOCK: u64 = seqio_disk::BLOCK_SIZE;

impl ExtentCache {
    /// Creates a cache holding at most `capacity` bytes (0 disables it).
    pub fn new(capacity: u64) -> Self {
        ExtentCache { capacity, used: 0, extents: Vec::new(), evictions: 0, wasted_bytes: 0 }
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of extents reclaimed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Prefetched bytes reclaimed before any request consumed them.
    pub fn wasted_bytes(&self) -> u64 {
        self.wasted_bytes
    }

    /// Serves `[lba, lba+blocks)` on `port` if a resident extent covers it.
    pub fn lookup(&mut self, port: usize, lba: Lba, blocks: u64, now: SimTime) -> bool {
        self.lookup_extent(port, lba, blocks, now).is_some()
    }

    /// Like [`lookup`](Self::lookup), but reports the covering extent so the
    /// caller can decide whether to prefetch the next one.
    pub fn lookup_extent(
        &mut self,
        port: usize,
        lba: Lba,
        blocks: u64,
        now: SimTime,
    ) -> Option<ExtentHit> {
        let _ = now;
        for e in &mut self.extents {
            if e.port == port && e.start <= lba && lba + blocks <= e.start + e.blocks {
                e.touched = e.touched.max(lba + blocks - e.start);
                return Some(ExtentHit { start: e.start, blocks: e.blocks, touched: e.touched });
            }
        }
        None
    }

    /// Non-mutating containment check for a single block.
    pub fn contains(&self, port: usize, lba: Lba) -> bool {
        self.extents.iter().any(|e| e.port == port && e.start <= lba && lba < e.start + e.blocks)
    }

    /// Inserts a fetched extent, evicting least-recently-used extents until
    /// it fits. Extents larger than the whole cache are not inserted.
    pub fn insert(&mut self, port: usize, lba: Lba, blocks: u64, now: SimTime) {
        let bytes = blocks * BLOCK;
        if bytes > self.capacity {
            return;
        }
        while self.used + bytes > self.capacity {
            let idx = self
                .extents
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.inserted)
                .map(|(i, _)| i)
                .expect("used > 0 implies extents exist");
            let victim = self.extents.swap_remove(idx);
            self.used -= victim.blocks * BLOCK;
            self.evictions += 1;
            self.wasted_bytes += victim.blocks.saturating_sub(victim.touched) * BLOCK;
        }
        self.extents.push(Extent { port, start: lba, blocks, touched: 0, inserted: now });
        self.used += bytes;
    }

    /// Drops any extent overlapping `[lba, lba+blocks)` on `port`.
    pub fn invalidate(&mut self, port: usize, lba: Lba, blocks: u64) {
        let mut i = 0;
        while i < self.extents.len() {
            let e = self.extents[i];
            if e.port == port && lba < e.start + e.blocks && e.start < lba + blocks {
                self.used -= e.blocks * BLOCK;
                self.extents.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio_simcore::units::MIB;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn insert_then_lookup() {
        let mut c = ExtentCache::new(MIB);
        assert!(!c.lookup(0, 0, 8, t(1)));
        c.insert(0, 0, 128, t(1));
        assert!(c.lookup(0, 0, 128, t(2)));
        assert!(c.lookup(0, 64, 64, t(3)));
        assert!(!c.lookup(0, 64, 128, t(4)));
        assert!(!c.lookup(1, 0, 8, t(5)), "other port must miss");
    }

    #[test]
    fn fifo_eviction_on_pressure() {
        let mut c = ExtentCache::new(512 * 1024); // holds two 512-block extents
        c.insert(0, 0, 512, t(1));
        c.insert(0, 10_000, 512, t(2));
        assert!(c.lookup(0, 0, 8, t(3))); // touching does not protect (FIFO)
        c.insert(0, 20_000, 512, t(4)); // evicts the oldest insert
        assert!(!c.lookup(0, 0, 8, t(5)), "oldest insert evicted despite touch");
        assert!(c.lookup(0, 10_000, 8, t(6)));
        assert!(c.lookup(0, 20_000, 8, t(7)));
        assert_eq!(c.evictions(), 1);
        assert!(c.wasted_bytes() > 0);
    }

    #[test]
    fn oversized_extent_skipped() {
        let mut c = ExtentCache::new(1024);
        c.insert(0, 0, 100, t(1)); // 51200 bytes > 1024
        assert_eq!(c.used(), 0);
        assert!(!c.lookup(0, 0, 1, t(2)));
    }

    #[test]
    fn invalidate_overlaps() {
        let mut c = ExtentCache::new(MIB);
        c.insert(0, 0, 128, t(1));
        c.insert(1, 0, 128, t(1));
        c.invalidate(0, 64, 1);
        assert!(!c.lookup(0, 0, 8, t(2)));
        assert!(c.lookup(1, 0, 8, t(2)), "other port unaffected");
        assert_eq!(c.used(), 128 * BLOCK);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ExtentCache::new(0);
        c.insert(0, 0, 8, t(1));
        assert!(!c.lookup(0, 0, 8, t(2)));
    }

    #[test]
    fn thrash_when_working_set_exceeds_capacity() {
        // 4 streams x 512-block extents over a cache that fits 2: no reuse.
        let mut c = ExtentCache::new(512 * 1024);
        let mut hits = 0;
        for round in 0u64..8 {
            for s in 0u64..4 {
                let lba = s * 1_000_000 + round * 512;
                if c.lookup(0, lba, 128, t(round * 10 + s)) {
                    hits += 1;
                } else {
                    c.insert(0, lba, 512, t(round * 10 + s));
                }
            }
        }
        assert_eq!(hits, 0);
    }
}
