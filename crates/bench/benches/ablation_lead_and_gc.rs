//! Ablation — per-stream prefetch lead bound and GC buffer timeout.
//!
//! The lead bound (how far a stream may stage ahead of its client) and the
//! garbage-collection timeout both trade memory hygiene against pipeline
//! smoothness. This ablation sweeps each on a 100-stream single-disk
//! workload.

use seqio_bench::{window_secs, Figure, Series};
use seqio_core::ServerConfig;
use seqio_node::{Experiment, Frontend};
use seqio_simcore::units::{format_bytes, KIB, MIB};
use seqio_simcore::SimDuration;

fn main() {
    let (warmup, duration) = window_secs((4, 4), (8, 8));

    let mut fig = Figure::new(
        "Ablation",
        "Prefetch lead bound (100 streams, R=512K, D=8, N=16)",
        "Lead bound",
        "Throughput (MBytes/s)",
    );
    let mut s = Series::new("throughput");
    for lead in [512 * KIB, MIB, 4 * MIB, 16 * MIB] {
        let cfg = ServerConfig {
            dispatch_streams: 8,
            read_ahead_bytes: 512 * KIB,
            requests_per_residency: 16,
            memory_bytes: 128 * MIB,
            prefetch_lead_bytes: lead,
            ..ServerConfig::default_tuning()
        };
        let r = Experiment::builder()
            .streams_per_disk(100)
            .frontend(Frontend::StreamScheduler(cfg))
            .warmup(warmup)
            .duration(duration)
            .seed(2222)
            .run();
        s.push(format_bytes(lead), r.total_throughput_mbs());
    }
    fig.add(s);
    fig.report("ablation_lead");

    let mut fig2 = Figure::new(
        "Ablation",
        "GC buffer timeout (100 streams, R=1M, D=S)",
        "Buffer timeout (s)",
        "Throughput (MBytes/s)",
    );
    let mut s2 = Series::new("throughput");
    let mut gc = Series::new("buffers GC-freed (x1000)");
    for secs in [1u64, 5, 20] {
        let cfg = ServerConfig {
            buffer_timeout: SimDuration::from_secs(secs),
            ..ServerConfig::all_dispatched(100, MIB)
        };
        let r = Experiment::builder()
            .streams_per_disk(100)
            .frontend(Frontend::StreamScheduler(cfg))
            .warmup(warmup)
            .duration(duration)
            .seed(2223)
            .run();
        s2.push(secs.to_string(), r.total_throughput_mbs());
        let m = r.server_metrics.expect("metrics");
        gc.push(secs.to_string(), m.streams_gced as f64 / 1000.0);
    }
    fig2.add(s2);
    fig2.add(gc);
    fig2.report("ablation_gc_timeout");
}
