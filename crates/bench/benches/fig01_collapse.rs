//! Figure 1 — Throughput collapse for multiple sequential streams on a
//! 60-disk setup.
//!
//! Paper: total streams {60, 100, 300, 500} over 60 disks, request sizes
//! 8K–256K, direct path. Throughput collapses by 2–5x as streams/disk grow.

use seqio_bench::{quick_mode, window_secs, Figure, Grid};
use seqio_node::{Experiment, NodeShape};
use seqio_simcore::units::{format_bytes, KIB};

fn main() {
    let (warmup, duration) = window_secs((2, 3), (4, 8));
    let request_sizes: Vec<u64> = if quick_mode() {
        vec![8 * KIB, 64 * KIB, 256 * KIB]
    } else {
        vec![8 * KIB, 16 * KIB, 64 * KIB, 128 * KIB, 256 * KIB]
    };
    // Streams per disk (the paper's totals 60/100/300/500 over 60 disks;
    // our harness spreads streams uniformly, so we use the nearest exact
    // multiples: 60, 120, 300, 480).
    let per_disk_counts: Vec<usize> = if quick_mode() { vec![1, 5] } else { vec![1, 2, 5, 8] };

    let mut grid = Grid::new();
    for &per_disk in &per_disk_counts {
        let label = format!("{} Streams", per_disk * 60);
        for &req in &request_sizes {
            grid = grid.point(
                &label,
                format_bytes(req),
                Experiment::builder()
                    .shape(NodeShape::sixty_disk())
                    .streams_per_disk(per_disk)
                    .request_size(req)
                    .warmup(warmup)
                    .duration(duration)
                    .seed(11)
                    .build(),
            );
        }
    }

    let mut fig = Figure::new(
        "Figure 1",
        "Throughput collapse for multiple sequential streams (60 disks)",
        "Request size",
        "Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("fig01_collapse");

    // Shape check: at any request size, 300+ total streams must deliver
    // far less than 60 streams (1/disk).
    let few = fig.series.first().expect("60-stream series").ys();
    let many = fig.series.last().expect("300+ stream series").ys();
    let last = few.len() - 1;
    assert!(
        many[last] < few[last] / 2.0,
        "collapse missing: {} vs {} MB/s at the largest request",
        many[last],
        few[last]
    );
    println!(
        "shape ok: {}x collapse at the largest request size",
        (few[last] / many[last]).round()
    );
}
