//! Deterministic random numbers for simulations.
//!
//! Every stochastic choice in `seqio` (rotational phase sampling, workload
//! placement jitter, …) draws from a [`SimRng`] seeded explicitly by the
//! experiment, so a run is a pure function of its configuration.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A small, fast, explicitly-seeded random number generator.
///
/// # Examples
///
/// ```
/// use seqio_simcore::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator, e.g. one per component, so
    /// adding draws in one component does not perturb another.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range: lo must be below hi");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "chance: p must be in [0,1]");
        self.inner.gen::<f64>() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "exponential: mean must be positive");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut root1 = SimRng::seed_from(9);
        let mut root2 = SimRng::seed_from(9);
        let mut c1 = root1.fork(1);
        let mut c2 = root2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Forks with different salts from identical roots differ.
        let mut root3 = SimRng::seed_from(9);
        let mut d = root3.fork(2);
        assert_ne!(c1.next_u64(), d.next_u64());
    }

    #[test]
    fn below_and_range_respect_bounds() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1_000 {
            assert!(r.below(10) < 10);
            let v = r.range(100, 200);
            assert!((100..200).contains(&v));
        }
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SimRng::seed_from(6);
        for _ in 0..1_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut r = SimRng::seed_from(7);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
