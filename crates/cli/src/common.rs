//! The knobs every simulating subcommand shares.
//!
//! `run`, `sweep` and `cluster run` all accept the same fault /
//! observability / worker flags, parsed once into a [`CommonArgs`] so the
//! grammar, defaults and error messages cannot drift between subcommands.

use seqio_node::{MetricSeries, ObsConfig, SpanRecord};
use seqio_simcore::{FaultPlan, SimDuration};

use crate::args::Args;

/// Flags shared by `run`, `sweep` and `cluster run`.
pub const COMMON_FLAGS: &[&str] =
    &["faults", "trace-out", "metrics-out", "sample-interval", "jobs"];

/// Parsed values of the [`COMMON_FLAGS`].
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// `--faults SPEC`, already parsed and validated. Where it lands is
    /// the subcommand's business: the single node, every sweep point, or
    /// `--fault-node` of a cluster.
    pub faults: Option<FaultPlan>,
    /// `--trace-out FILE`: record request-lifecycle spans and write them
    /// here (JSONL when the path ends in `.jsonl`, CSV otherwise).
    pub trace_out: Option<String>,
    /// `--metrics-out FILE`: sample a metric time series and write the
    /// CSV here.
    pub metrics_out: Option<String>,
    /// `--sample-interval DUR` metric sampling period (default 10 ms).
    pub sample_interval: SimDuration,
    /// `--jobs N` worker override (sweep points or cluster nodes).
    pub jobs: Option<usize>,
}

impl CommonArgs {
    /// Parses the shared flags out of an argument list.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the offending flag (and, for
    /// `--faults`, the offending token of the spec).
    pub fn from_args(args: &Args) -> Result<CommonArgs, String> {
        let faults = match args.get("faults") {
            Some(spec) => Some(FaultPlan::parse(spec).map_err(|e| format!("--faults: {e}"))?),
            None => None,
        };
        let jobs = match args.get("jobs") {
            Some(j) => Some(j.parse().map_err(|_| format!("--jobs: bad integer {j:?}"))?),
            None => None,
        };
        Ok(CommonArgs {
            faults,
            trace_out: args.get("trace-out").map(String::from),
            metrics_out: args.get("metrics-out").map(String::from),
            sample_interval: args.duration_or("sample-interval", SimDuration::from_millis(10))?,
            jobs,
        })
    }

    /// The observability configuration the output flags imply (`None`
    /// when nothing is recorded).
    pub fn obs(&self) -> Option<ObsConfig> {
        let spans = self.trace_out.is_some();
        let metrics = self.metrics_out.is_some();
        if !spans && !metrics {
            return None;
        }
        let mut cfg = ObsConfig::new().sample_every(self.sample_interval);
        if spans {
            cfg = cfg.with_spans();
        }
        if metrics {
            cfg = cfg.with_metrics();
        }
        Some(cfg)
    }

    /// Writes whatever the output flags asked for from the recordings at
    /// hand, printing one summary line per file.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag and the I/O failure.
    pub fn write_outputs(
        &self,
        spans: Option<&Vec<SpanRecord>>,
        metrics: Option<&MetricSeries>,
    ) -> Result<(), String> {
        if let Some(path) = &self.trace_out {
            let spans = spans.expect("span recording was enabled");
            let rendered = if path.ends_with(".jsonl") {
                seqio_node::span::spans_to_jsonl(spans)
            } else {
                seqio_node::span::spans_to_csv(spans)
            };
            std::fs::write(path, rendered).map_err(|e| format!("--trace-out {path}: {e}"))?;
            println!("spans:           {} spans -> {path}", spans.len());
        }
        if let Some(path) = &self.metrics_out {
            let series = metrics.expect("metric sampling was enabled");
            std::fs::write(path, series.to_csv())
                .map_err(|e| format!("--metrics-out {path}: {e}"))?;
            println!(
                "metrics:         {} samples x {} series (every {}) -> {path}",
                series.len(),
                series.names().len(),
                series.interval()
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(items: &[&str]) -> Args {
        Args::parse(items.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn defaults_are_quiet() {
        let c = CommonArgs::from_args(&args(&[])).unwrap();
        assert!(c.faults.is_none() && c.jobs.is_none());
        assert!(c.trace_out.is_none() && c.metrics_out.is_none());
        assert_eq!(c.sample_interval, SimDuration::from_millis(10));
        assert!(c.obs().is_none());
    }

    #[test]
    fn output_flags_imply_recording() {
        let c = CommonArgs::from_args(&args(&["--trace-out", "s.csv"])).unwrap();
        let obs = c.obs().unwrap();
        assert!(obs.spans && !obs.metrics);
        let c =
            CommonArgs::from_args(&args(&["--metrics-out", "m.csv", "--sample-interval", "2ms"]))
                .unwrap();
        let obs = c.obs().unwrap();
        assert!(!obs.spans && obs.metrics);
        assert_eq!(obs.sample_interval, SimDuration::from_millis(2));
    }

    #[test]
    fn fault_errors_surface_the_token() {
        let err =
            CommonArgs::from_args(&args(&["--faults", "errors:disk=zero,rate=0.5"])).unwrap_err();
        assert!(err.starts_with("--faults:"), "{err}");
        assert!(err.contains("`disk=zero`"), "{err}");
        let err = CommonArgs::from_args(&args(&["--jobs", "many"])).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
    }
}
