//! Binary-heap reference event queue.
//!
//! [`HeapEventQueue`] is the original `BinaryHeap`-backed queue: a priority
//! queue of `(SimTime, payload)` pairs with ties on time broken by insertion
//! order (FIFO), which makes every simulation run bit-for-bit reproducible
//! for a given seed and event-generation order. The default kernel queue is
//! now the calendar queue ([`EventQueue`](crate::EventQueue)); this
//! implementation is kept as the semantic reference that the differential
//! property tests compare against.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking, backed by a
/// binary heap. Reference implementation for the default
/// [`EventQueue`](crate::EventQueue).
///
/// # Examples
///
/// ```
/// use seqio_simcore::{HeapEventQueue, SimTime};
///
/// let mut q = HeapEventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// q.push(SimTime::from_nanos(10), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for Entry<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("at", &self.at)
            .field("seq", &self.seq)
            .field("payload", &self.payload)
            .finish()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        HeapEventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time — scheduling into the
    /// past is always a model bug and would silently corrupt causality.
    pub fn push(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "scheduling into the past: event at {at} but now is {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (a simple progress metric).
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = HeapEventQueue::new();
        for &t in &[5u64, 3, 9, 1, 7] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = HeapEventQueue::new();
        let t = SimTime::from_nanos(42);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = HeapEventQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.push(SimTime::from_nanos(30), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(10));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(30));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q = HeapEventQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.pop();
        q.push(SimTime::from_nanos(5), ());
    }

    #[test]
    fn same_time_as_now_is_allowed() {
        let mut q = HeapEventQueue::new();
        q.push(SimTime::from_nanos(10), 1);
        q.pop();
        q.push(SimTime::from_nanos(10), 2); // zero-delay follow-up event
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 2)));
    }

    #[test]
    fn len_and_counters() {
        let mut q = HeapEventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO + SimDuration::from_micros(1), ());
        q.push(SimTime::ZERO + SimDuration::from_micros(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1_000)));
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_count(), 2);
    }

    proptest! {
        /// Popping always yields a non-decreasing time sequence, and within
        /// one timestamp, insertion order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1_000, 0..200)) {
            let mut q = HeapEventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(i > li, "FIFO violated within a timestamp");
                    }
                }
                last = Some((t, i));
            }
        }

        /// The queue drains exactly the number of events pushed.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..100, 0..100)) {
            let mut q = HeapEventQueue::new();
            for &t in &times {
                q.push(SimTime::from_nanos(t), ());
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            prop_assert_eq!(n, times.len());
        }
    }
}
