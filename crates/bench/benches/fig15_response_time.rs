//! Figure 15 — Average stream response time.
//!
//! Paper: 64 KB client requests, one outstanding per stream; memory 8, 64
//! and 256 MB; read-ahead 256K–8M; 1/10/100 streams. Response time is
//! dominated by the number of streams; at a fixed stream count larger
//! read-ahead *improves* the average because most requests are then served
//! from memory.

use seqio_bench::{quick_mode, window_secs, Figure, Grid};
use seqio_core::ServerConfig;
use seqio_node::{Experiment, Frontend};
use seqio_simcore::units::{format_bytes, KIB, MIB};

fn main() {
    let (warmup, duration) = window_secs((4, 6), (8, 12));
    let readaheads: Vec<u64> = if quick_mode() {
        vec![256 * KIB, MIB, 8 * MIB]
    } else {
        vec![256 * KIB, 512 * KIB, MIB, 2 * MIB, 8 * MIB]
    };
    let memories: Vec<u64> = vec![8 * MIB, 64 * MIB, 256 * MIB];
    let stream_counts: Vec<usize> = vec![1, 10, 100];

    let mut grid = Grid::new();
    for &m in &memories {
        for &n in &stream_counts {
            let label = format!("S={n} (M={})", format_bytes(m));
            for &ra in &readaheads {
                if m < ra {
                    grid = grid.fixed(&label, format_bytes(ra), f64::NAN);
                    continue;
                }
                let cfg = ServerConfig::memory_limited(m, ra, 1);
                grid = grid.point(
                    &label,
                    format_bytes(ra),
                    Experiment::builder()
                        .streams_per_disk(n)
                        .frontend(Frontend::StreamScheduler(cfg))
                        .warmup(warmup)
                        .duration(duration)
                        .seed(1515)
                        .build(),
                );
            }
        }
    }

    let mut fig = Figure::new(
        "Figure 15",
        "Average stream response time (64K requests, 1 outstanding)",
        "ReadAhead",
        "Average Latency (msec)",
    );
    grid.run().fill(&mut fig, |r| r.mean_response_ms());
    fig.report("fig15_response_time");

    // Shape checks: (1) response time grows strongly with stream count;
    // (2) at 100 streams, more read-ahead lowers the average.
    let find = |label: &str| {
        fig.series
            .iter()
            .find(|s| s.label.starts_with(label))
            .unwrap_or_else(|| panic!("missing series {label}"))
            .ys()
    };
    let one = find("S=1 (M=256M");
    let hundred = find("S=100 (M=256M");
    assert!(
        hundred[0] > 10.0 * one[0],
        "100 streams ({:.1} ms) must be far slower than 1 ({:.2} ms)",
        hundred[0],
        one[0]
    );
    assert!(
        *hundred.last().unwrap() < hundred[0],
        "larger read-ahead should improve the 100-stream average: {hundred:?}"
    );
    println!(
        "shape ok: S=100, M=256M: {:.0} ms at 256K RA -> {:.0} ms at 8M RA; S=1: {:.2} ms",
        hundred[0],
        hundred.last().unwrap(),
        one[0]
    );
}
