//! Integration tests for the paper's headline claims, exercised through the
//! public facade (`seqio::*`) across all crates.

use seqio::core::ServerConfig;
use seqio::node::{Experiment, Frontend, NodeShape};
use seqio::simcore::units::{KIB, MIB};
use seqio::simcore::SimDuration;

fn windows() -> (SimDuration, SimDuration) {
    (SimDuration::from_secs(3), SimDuration::from_secs(3))
}

/// "Our approach improves disk throughput up to a factor of 4 with a
/// workload of 100 sequential streams" — we assert a conservative 3x.
#[test]
fn headline_multi_x_improvement_at_100_streams() {
    let (warmup, duration) = windows();
    let direct =
        Experiment::builder().streams_per_disk(100).warmup(warmup).duration(duration).seed(1).run();
    let sched = Experiment::builder()
        .streams_per_disk(100)
        .frontend(Frontend::stream_scheduler_with_readahead(4 * MIB))
        .warmup(warmup)
        .duration(duration)
        .seed(1)
        .run();
    let factor = sched.total_throughput_mbs() / direct.total_throughput_mbs();
    assert!(
        factor > 3.0,
        "expected >3x improvement, got {factor:.1}x ({:.1} vs {:.1} MB/s)",
        sched.total_throughput_mbs(),
        direct.total_throughput_mbs()
    );
}

/// "It effectively makes the I/O subsystem insensitive to the number of I/O
/// streams used": with the small-dispatch configuration the spread between
/// 10 and 100 streams stays small while the direct path collapses.
#[test]
fn insensitivity_to_stream_count() {
    let (warmup, duration) = windows();
    let run = |streams: usize, fe: Option<ServerConfig>| {
        let mut b = Experiment::builder()
            .streams_per_disk(streams)
            .warmup(warmup)
            .duration(duration)
            .seed(2);
        if let Some(cfg) = fe {
            b = b.frontend(Frontend::StreamScheduler(cfg));
        }
        b.run().total_throughput_mbs()
    };
    let cfg = || ServerConfig::small_dispatch(1, 512 * KIB, 64);
    let sched_10 = run(10, Some(cfg()));
    let sched_100 = run(100, Some(cfg()));
    let direct_10 = run(10, None);
    let direct_100 = run(100, None);

    let sched_spread = (sched_10 - sched_100).abs() / sched_10.max(sched_100);
    let direct_spread = (direct_10 - direct_100).abs() / direct_10.max(direct_100);
    assert!(
        sched_spread < 0.35,
        "scheduler should be nearly flat 10->100 streams: {sched_10:.1} vs {sched_100:.1}"
    );
    assert!(
        direct_spread > 0.5,
        "direct path should collapse 10->100 streams: {direct_10:.1} vs {direct_100:.1}"
    );
}

/// "Small amounts of host-level buffering can be very effective": 16 MB of
/// staging already buys most of the achievable throughput at 60 streams.
#[test]
fn small_memory_is_effective() {
    let (warmup, duration) = windows();
    let run = |mem: u64| {
        let cfg = ServerConfig::memory_limited(mem, 4 * MIB, 1);
        Experiment::builder()
            .streams_per_disk(60)
            .frontend(Frontend::StreamScheduler(cfg))
            .warmup(warmup)
            .duration(duration)
            .seed(3)
            .run()
            .total_throughput_mbs()
    };
    let small = run(16 * MIB);
    let big = run(256 * MIB);
    assert!(small > 0.7 * big, "16MB ({small:.1}) should reach >70% of 256MB ({big:.1})");
}

/// "Response time is affected mostly by the number of streams, with
/// read-ahead size having only a small negative impact" — and larger R
/// lowers the mean because more requests are served from memory.
#[test]
fn response_time_scales_with_streams() {
    let (warmup, duration) = windows();
    let run = |streams: usize, ra: u64| {
        Experiment::builder()
            .streams_per_disk(streams)
            .frontend(Frontend::stream_scheduler_with_readahead(ra))
            .warmup(warmup)
            .duration(duration)
            .seed(4)
            .run()
            .mean_response_ms()
    };
    let few = run(10, MIB);
    let many = run(100, MIB);
    assert!(many > 3.0 * few, "100 streams ({many:.1} ms) >> 10 streams ({few:.1} ms)");
    let many_big_ra = run(100, 8 * MIB);
    assert!(
        many_big_ra < many,
        "8M read-ahead ({many_big_ra:.1} ms) should lower the 100-stream mean ({many:.1} ms)"
    );
}

/// The paper's memory invariant `M >= D*R*N` is enforced end to end.
#[test]
fn memory_invariant_rejected_at_experiment_level() {
    let mut cfg = ServerConfig::default_tuning();
    cfg.memory_bytes = cfg.working_set_bytes() - 1;
    let e = Experiment::builder().frontend(Frontend::StreamScheduler(cfg)).build();
    assert!(e.validate().is_err());
}

/// The 8-disk medium configuration recovers a large fraction of the
/// controller's 450 MB/s with D = #disks (Figure 13's conclusion).
#[test]
fn eight_disk_small_dispatch_recovers_aggregate() {
    let cfg = ServerConfig::small_dispatch(8, 512 * KIB, 128);
    let r = Experiment::builder()
        .shape(NodeShape::eight_disk())
        .streams_per_disk(30)
        .frontend(Frontend::StreamScheduler(cfg))
        .warmup(SimDuration::from_secs(6))
        .duration(SimDuration::from_secs(4))
        .seed(5)
        .run();
    let t = r.total_throughput_mbs();
    assert!(t > 270.0, "expected >60% of 450 MB/s, got {t:.0}");
}
