//! Open-loop arrival and popularity generators.
//!
//! Session arrivals follow a Poisson process whose instantaneous rate may
//! be modulated (bursty on/off phases, a diurnal sinusoid). Arrivals are
//! drawn by Lewis–Shedler thinning: candidate points come from a
//! homogeneous process at the peak rate and are accepted with probability
//! `rate(t) / peak`, which realizes the exact inhomogeneous process
//! without any per-interval integration. Stream popularity follows a Zipf
//! law over a fixed title catalogue, the standard model for video-on-
//! demand request mixes.
//!
//! Both generators draw from a dedicated [`SimRng`] stream that the
//! driver derives independently of every storage-side RNG (rotational
//! phases, fault injection, per-stream jitter), so enabling the client
//! front-end cannot perturb the storage simulation's randomness.

use seqio_simcore::{SeqioError, SimDuration, SimRng, SimTime};

/// Time-of-day modulation applied on top of the base arrival rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateModulation {
    /// A homogeneous Poisson process at the base rate.
    Constant,
    /// On/off bursts: within each `period`, the first `duty` fraction
    /// runs at `on_factor` times the base rate, the remainder at the
    /// base rate (flash-crowd arrivals).
    Bursty {
        /// Length of one on/off cycle.
        period: SimDuration,
        /// Fraction of the period spent in the burst, in `(0, 1]`.
        duty: f64,
        /// Rate multiplier during the burst (≥ 1).
        on_factor: f64,
    },
    /// A sinusoidal daily cycle: `rate(t) = base * (1 + depth *
    /// sin(2πt / period))`, `depth` in `[0, 1)`.
    Diurnal {
        /// Length of one full cycle.
        period: SimDuration,
        /// Relative swing around the base rate, in `[0, 1)`.
        depth: f64,
    },
}

impl RateModulation {
    /// Validates the modulation parameters.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SeqioError> {
        match *self {
            RateModulation::Constant => Ok(()),
            RateModulation::Bursty { period, duty, on_factor } => {
                if period == SimDuration::ZERO {
                    return Err(SeqioError::Experiment("burst period must be positive".into()));
                }
                if !(duty > 0.0 && duty <= 1.0) {
                    return Err(SeqioError::Experiment(format!(
                        "burst duty must be in (0, 1], got {duty}"
                    )));
                }
                if !on_factor.is_finite() || on_factor < 1.0 {
                    return Err(SeqioError::Experiment(format!(
                        "burst on_factor must be a finite value >= 1, got {on_factor}"
                    )));
                }
                Ok(())
            }
            RateModulation::Diurnal { period, depth } => {
                if period == SimDuration::ZERO {
                    return Err(SeqioError::Experiment("diurnal period must be positive".into()));
                }
                if !(0.0..1.0).contains(&depth) {
                    return Err(SeqioError::Experiment(format!(
                        "diurnal depth must be in [0, 1), got {depth}"
                    )));
                }
                Ok(())
            }
        }
    }

    /// Rate multiplier at `t` seconds (relative to the base rate).
    fn factor_at(&self, t_secs: f64) -> f64 {
        match *self {
            RateModulation::Constant => 1.0,
            RateModulation::Bursty { period, duty, on_factor } => {
                let p = period.as_secs_f64();
                if (t_secs % p) < duty * p {
                    on_factor
                } else {
                    1.0
                }
            }
            RateModulation::Diurnal { period, depth } => {
                let p = period.as_secs_f64();
                1.0 + depth * (2.0 * std::f64::consts::PI * t_secs / p).sin()
            }
        }
    }

    /// The largest rate multiplier over all time (the thinning envelope).
    fn peak_factor(&self) -> f64 {
        match *self {
            RateModulation::Constant => 1.0,
            RateModulation::Bursty { on_factor, .. } => on_factor.max(1.0),
            RateModulation::Diurnal { depth, .. } => 1.0 + depth,
        }
    }
}

/// An open-loop (possibly inhomogeneous) Poisson arrival process over a
/// finite horizon, realized by Lewis–Shedler thinning.
#[derive(Debug)]
pub struct ArrivalProcess {
    base_rate: f64,
    modulation: RateModulation,
    horizon_secs: f64,
    t_secs: f64,
    rng: SimRng,
}

impl ArrivalProcess {
    /// Builds the process: `base_rate` sessions per second modulated by
    /// `modulation`, generating arrivals in `[0, horizon)`, drawn from
    /// `rng`.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive or non-finite base rate, a zero horizon,
    /// and invalid modulation parameters.
    pub fn new(
        base_rate: f64,
        modulation: RateModulation,
        horizon: SimDuration,
        rng: SimRng,
    ) -> Result<Self, SeqioError> {
        if !base_rate.is_finite() || base_rate <= 0.0 {
            return Err(SeqioError::Experiment(format!(
                "arrival rate must be positive and finite, got {base_rate}"
            )));
        }
        if horizon == SimDuration::ZERO {
            return Err(SeqioError::Experiment("arrival horizon must be positive".into()));
        }
        modulation.validate()?;
        Ok(ArrivalProcess {
            base_rate,
            modulation,
            horizon_secs: horizon.as_secs_f64(),
            t_secs: 0.0,
            rng,
        })
    }

    /// Draws the next arrival instant, or `None` once the horizon is
    /// reached. Instants are strictly non-decreasing.
    pub fn next_arrival(&mut self) -> Option<SimTime> {
        let peak = self.base_rate * self.modulation.peak_factor();
        loop {
            self.t_secs += self.rng.exponential(1.0 / peak);
            if self.t_secs >= self.horizon_secs {
                return None;
            }
            let accept = self.modulation.factor_at(self.t_secs) / self.modulation.peak_factor();
            if accept >= 1.0 || self.rng.unit() < accept {
                return Some(SimTime::ZERO + SimDuration::from_secs_f64(self.t_secs));
            }
        }
    }
}

/// A Zipf-distributed sampler over a catalogue of `n` titles: title `k`
/// (0-based rank) is drawn with probability proportional to
/// `(k + 1)^-exponent`. Sampling is O(log n) via a binary search over the
/// precomputed cumulative weights.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `titles` ranks at the given exponent
    /// (`0.0` = uniform; classic video-on-demand fits use `0.7..=1.1`).
    ///
    /// # Errors
    ///
    /// Rejects an empty catalogue and a negative or non-finite exponent.
    pub fn new(titles: usize, exponent: f64) -> Result<Self, SeqioError> {
        if titles == 0 {
            return Err(SeqioError::Experiment("need at least one title".into()));
        }
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(SeqioError::Experiment(format!(
                "Zipf exponent must be finite and non-negative, got {exponent}"
            )));
        }
        let mut cumulative = Vec::with_capacity(titles);
        let mut total = 0.0;
        for k in 0..titles {
            total += ((k + 1) as f64).powf(-exponent);
            cumulative.push(total);
        }
        Ok(ZipfSampler { cumulative })
    }

    /// Number of titles in the catalogue.
    pub fn titles(&self) -> usize {
        self.cumulative.len()
    }

    /// Draws one title rank in `0..titles()`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let total = *self.cumulative.last().expect("catalogue is non-empty");
        let u = rng.unit() * total;
        self.cumulative.partition_point(|&c| c <= u).min(self.cumulative.len() - 1)
    }

    /// The modelled probability of title rank `k`.
    pub fn probability(&self, k: usize) -> f64 {
        let total = *self.cumulative.last().expect("catalogue is non-empty");
        let lo = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        (self.cumulative[k] - lo) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(42)
    }

    #[test]
    fn constant_process_stays_inside_the_horizon_in_order() {
        let mut p =
            ArrivalProcess::new(100.0, RateModulation::Constant, SimDuration::from_secs(10), rng())
                .unwrap();
        let mut last = SimTime::ZERO;
        let mut n = 0u64;
        while let Some(t) = p.next_arrival() {
            assert!(t >= last, "arrivals are non-decreasing");
            assert!(t < SimTime::ZERO + SimDuration::from_secs(10));
            last = t;
            n += 1;
        }
        // Mean 1000 arrivals, sd ~32: a 6-sigma band is [810, 1190].
        assert!((810..1190).contains(&n), "expected ~1000 arrivals, got {n}");
    }

    #[test]
    fn bursty_modulation_concentrates_arrivals_in_the_burst() {
        let m = RateModulation::Bursty {
            period: SimDuration::from_secs(10),
            duty: 0.2,
            on_factor: 8.0,
        };
        let mut p = ArrivalProcess::new(50.0, m, SimDuration::from_secs(100), rng()).unwrap();
        let (mut on, mut off) = (0u64, 0u64);
        while let Some(t) = p.next_arrival() {
            let phase = t.duration_since(SimTime::ZERO).as_secs_f64() % 10.0;
            if phase < 2.0 {
                on += 1;
            } else {
                off += 1;
            }
        }
        // Rates are 400/s for 20 s and 50/s for 80 s: 8000 vs 4000.
        assert!(on > off, "burst window should dominate: on={on} off={off}");
        let ratio = on as f64 / off as f64;
        assert!((1.5..2.7).contains(&ratio), "expected on/off ~2, got {ratio}");
    }

    #[test]
    fn diurnal_modulation_follows_the_sinusoid() {
        let m = RateModulation::Diurnal { period: SimDuration::from_secs(100), depth: 0.9 };
        let mut p = ArrivalProcess::new(100.0, m, SimDuration::from_secs(100), rng()).unwrap();
        let (mut first_half, mut second_half) = (0u64, 0u64);
        while let Some(t) = p.next_arrival() {
            if t < SimTime::ZERO + SimDuration::from_secs(50) {
                first_half += 1;
            } else {
                second_half += 1;
            }
        }
        // sin is positive over the first half-period, negative after.
        assert!(
            first_half > 2 * second_half,
            "peak half should dominate: {first_half} vs {second_half}"
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let h = SimDuration::from_secs(1);
        assert!(ArrivalProcess::new(0.0, RateModulation::Constant, h, rng()).is_err());
        assert!(ArrivalProcess::new(f64::INFINITY, RateModulation::Constant, h, rng()).is_err());
        assert!(
            ArrivalProcess::new(1.0, RateModulation::Constant, SimDuration::ZERO, rng()).is_err()
        );
        let bad_duty = RateModulation::Bursty { period: h, duty: 0.0, on_factor: 2.0 };
        assert!(ArrivalProcess::new(1.0, bad_duty, h, rng()).is_err());
        let bad_factor = RateModulation::Bursty { period: h, duty: 0.5, on_factor: 0.5 };
        assert!(ArrivalProcess::new(1.0, bad_factor, h, rng()).is_err());
        let bad_depth = RateModulation::Diurnal { period: h, depth: 1.0 };
        assert!(ArrivalProcess::new(1.0, bad_depth, h, rng()).is_err());
        assert!(ZipfSampler::new(0, 1.0).is_err());
        assert!(ZipfSampler::new(10, -1.0).is_err());
        assert!(ZipfSampler::new(10, f64::NAN).is_err());
    }

    #[test]
    fn zipf_ranks_decay_and_cover_the_catalogue() {
        let z = ZipfSampler::new(100, 1.0).unwrap();
        let mut rng = rng();
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 is the most popular; its modelled share is 1/H(100).
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        let p0 = z.probability(0);
        let observed = counts[0] as f64 / 100_000.0;
        assert!((observed - p0).abs() < 0.01, "rank-0 share {observed} vs model {p0}");
        // Probabilities sum to 1.
        let total: f64 = (0..100).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = ZipfSampler::new(4, 0.0).unwrap();
        for k in 0..4 {
            assert!((z.probability(k) - 0.25).abs() < 1e-12);
        }
    }
}
