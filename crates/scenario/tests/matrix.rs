//! The scenario experiment matrix: every named scenario compared across
//! the direct frontend, the static tune panel and the adaptive tuner,
//! with machine-asserted bars (quick scale; the `scenario_matrix` bench
//! runs the same harness at full scale and `probe scenario` records the
//! same bars to `bench_results/scenario_probe.json`).

use seqio_scenario::{degraded_rescue, run_matrix, MatrixScale};

/// Per-scenario floor on the scheduler-vs-direct ratio
/// (`adaptive / direct`), set at roughly 80% of the measured quick-scale
/// value so legitimate model changes have headroom while a real
/// regression (or an accidental scheduler bypass) trips the bar.
/// Scenarios below 1.0 are where an open, churning population genuinely
/// favors direct issue — the matrix records that honestly rather than
/// pretending the scheduler always wins.
const SCHED_VS_DIRECT_FLOOR: [(&str, f64); 7] = [
    ("steady", 2.4),
    ("video", 0.9),
    ("backup", 2.8),
    ("mixed", 0.95),
    ("churn", 0.45),
    ("seek-restart", 0.7),
    ("degraded", 2.8),
];

#[test]
fn matrix_bars_hold_on_every_scenario() {
    let rows = run_matrix(&MatrixScale::quick(), 11).unwrap();
    assert_eq!(rows.len(), 7);
    for (r, (name, floor)) in rows.iter().zip(SCHED_VS_DIRECT_FLOOR) {
        assert_eq!(r.scenario, name);
        let best = r.best_static();
        println!(
            "{:<13} direct {:>7.2}  best-static {}={:.2}  wide {:>7.2}  adaptive {:>7.2}  \
             retunes {}",
            r.scenario, r.direct_mbs, best.name, best.mbs, r.wide_mbs, r.adaptive_mbs, r.retunes
        );
        assert!(r.direct_mbs > 0.0 && best.mbs > 0.0 && r.adaptive_mbs > 0.0, "{name}: dead cell");

        // The adaptive bar: matches or beats the best static candidate on
        // every scenario. Matching cases are bit-identical runs (the
        // tuner emitted nothing), so no epsilon is needed below the best
        // static value.
        assert!(
            r.adaptive_mbs >= best.mbs,
            "{name}: adaptive {:.2} MB/s fell below best static {}={:.2} MB/s",
            r.adaptive_mbs,
            best.name,
            best.mbs,
        );
        // A scenario where the tuner stayed quiet must match exactly —
        // anything else means epoch polling perturbed the run.
        if r.retunes == 0 {
            assert_eq!(
                r.adaptive_mbs,
                rows_static(r, "auto"),
                "{name}: zero retunes but adaptive diverged from the auto tune"
            );
        }

        // The scheduler-vs-direct bar.
        let ratio = r.adaptive_mbs / r.direct_mbs;
        assert!(
            ratio >= floor,
            "{name}: scheduler-vs-direct ratio {ratio:.2} fell below the {floor:.2} floor",
        );
    }

    // The video scenario is the adaptive tuner's showcase: staged data
    // piles up over idle disks under the deep auto tune, the widen rule
    // trades residency depth for dispatch width, and throughput ends
    // well clear of every static candidate.
    let video = &rows[1];
    assert!(video.retunes >= 1, "video: widen rule never fired");
    assert!(
        video.adaptive_mbs >= 1.2 * video.best_static().mbs,
        "video: adaptive {:.2} MB/s is not clearly ahead of best static {:.2} MB/s",
        video.adaptive_mbs,
        video.best_static().mbs,
    );
}

fn rows_static(r: &seqio_scenario::MatrixRow, name: &str) -> f64 {
    r.statics.iter().find(|s| s.name == name).map(|s| s.mbs).unwrap()
}

#[test]
fn degraded_rescue_strictly_wins() {
    let (static_mbs, adaptive_mbs, retunes) = degraded_rescue(&MatrixScale::quick(), 11).unwrap();
    println!("rescue: static {static_mbs:.2} adaptive {adaptive_mbs:.2} retunes {retunes}");
    assert!(retunes >= 1, "straggler rule never fired");
    assert!(
        adaptive_mbs > static_mbs,
        "adaptive {adaptive_mbs:.2} MB/s did not beat the narrow static tune {static_mbs:.2} MB/s"
    );
}
