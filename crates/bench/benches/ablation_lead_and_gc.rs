//! Ablation — per-stream prefetch lead bound and GC buffer timeout.
//!
//! The lead bound (how far a stream may stage ahead of its client) and the
//! garbage-collection timeout both trade memory hygiene against pipeline
//! smoothness. This ablation sweeps each on a 100-stream single-disk
//! workload.

use seqio_bench::{window_secs, Figure, Grid};
use seqio_core::ServerConfig;
use seqio_node::{Experiment, Frontend};
use seqio_simcore::units::{format_bytes, KIB, MIB};
use seqio_simcore::SimDuration;

fn main() {
    let (warmup, duration) = window_secs((4, 4), (8, 8));

    let mut grid = Grid::new();
    for lead in [512 * KIB, MIB, 4 * MIB, 16 * MIB] {
        let cfg = ServerConfig {
            dispatch_streams: 8,
            read_ahead_bytes: 512 * KIB,
            requests_per_residency: 16,
            memory_bytes: 128 * MIB,
            prefetch_lead_bytes: lead,
            ..ServerConfig::default_tuning()
        };
        grid = grid.point(
            "throughput",
            format_bytes(lead),
            Experiment::builder()
                .streams_per_disk(100)
                .frontend(Frontend::StreamScheduler(cfg))
                .warmup(warmup)
                .duration(duration)
                .seed(2222)
                .build(),
        );
    }
    let mut fig = Figure::new(
        "Ablation",
        "Prefetch lead bound (100 streams, R=512K, D=8, N=16)",
        "Lead bound",
        "Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("ablation_lead");

    let mut grid2 = Grid::new();
    for secs in [1u64, 5, 20] {
        let cfg = ServerConfig {
            buffer_timeout: SimDuration::from_secs(secs),
            ..ServerConfig::all_dispatched(100, MIB)
        };
        grid2 = grid2.point(
            "throughput",
            secs.to_string(),
            Experiment::builder()
                .streams_per_disk(100)
                .frontend(Frontend::StreamScheduler(cfg))
                .warmup(warmup)
                .duration(duration)
                .seed(2223)
                .build(),
        );
    }
    let run2 = grid2.run();
    let mut fig2 = Figure::new(
        "Ablation",
        "GC buffer timeout (100 streams, R=1M, D=S)",
        "Buffer timeout (s)",
        "Throughput (MBytes/s)",
    );
    run2.fill(&mut fig2, |r| r.total_throughput_mbs());
    fig2.add(run2.extract("throughput", "buffers GC-freed (x1000)", |r| {
        r.server_metrics.as_ref().expect("metrics").streams_gced as f64 / 1000.0
    }));
    fig2.report("ablation_gc_timeout");
}
