//! Mid-run stream rebalancing for the shared-clock co-simulation.
//!
//! At every epoch boundary the cluster driver snapshots each live node's
//! health ([`seqio_node::HealthSnapshot`], assembled purely from model
//! state) and hands the [`Rebalancer`] a list of [`NodeView`]s. The
//! rebalancer returns [`MoveDecision`]s — which global streams to migrate
//! off disks degraded past the rotate threshold, and to which node. The
//! planning function is pure: decisions depend only on the views (which are
//! themselves deterministic functions of the shared clock and the seeds),
//! never on worker count, wall-clock time, or recorder state — so a
//! rebalanced run is bit-identical at any `SEQIO_JOBS` count.

use seqio_simcore::{SeqioError, SimDuration, SimTime};

/// Configuration of the mid-run rebalancer.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceConfig {
    /// Epoch length: how often all nodes synchronize on the shared clock
    /// and the rebalancer looks for streams to migrate.
    pub check_interval: SimDuration,
    /// A disk whose straggler factor meets this threshold is degraded;
    /// live streams on it become migration candidates. Defaults to the
    /// stream scheduler's `degraded_rotate_threshold`.
    pub threshold: f64,
    /// Upper bound on migrations per epoch (`usize::MAX` = unbounded).
    pub max_moves_per_check: usize,
}

impl RebalanceConfig {
    /// A rebalancer checking every `check_interval`, with the stream
    /// scheduler's default degraded threshold and unbounded moves.
    pub fn new(check_interval: SimDuration) -> Self {
        RebalanceConfig {
            check_interval,
            threshold: seqio_core::ServerConfig::default_tuning().degraded_rotate_threshold,
            max_moves_per_check: usize::MAX,
        }
    }

    /// Overrides the degraded threshold.
    pub fn threshold(mut self, t: f64) -> Self {
        self.threshold = t;
        self
    }

    /// Caps migrations per epoch.
    pub fn max_moves_per_check(mut self, n: usize) -> Self {
        self.max_moves_per_check = n;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`SeqioError`].
    pub fn validate(&self) -> Result<(), SeqioError> {
        if self.check_interval == SimDuration::ZERO {
            return Err(SeqioError::Experiment("rebalance check interval must be positive".into()));
        }
        if !self.threshold.is_finite() || self.threshold <= 1.0 {
            return Err(SeqioError::Experiment(format!(
                "degraded threshold must be a finite factor above 1.0, got {}",
                self.threshold
            )));
        }
        Ok(())
    }
}

/// One live node as the rebalancer sees it at an epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeView {
    /// Node index.
    pub node: usize,
    /// Streams on the node that still have requests to issue.
    pub live_streams: usize,
    /// The node's worst per-disk straggler factor right now.
    pub worst_factor: f64,
    /// Live streams sitting on degraded disks, each with the straggler
    /// factor of its disk. Empty on healthy nodes.
    pub migratable: Vec<MigratableStream>,
}

/// A live stream on a degraded disk, eligible for migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigratableStream {
    /// Global stream id.
    pub global: usize,
    /// Straggler factor of the disk the stream sits on.
    pub factor: f64,
}

/// One planned migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveDecision {
    /// Global stream id to move.
    pub global: usize,
    /// Source node.
    pub from: usize,
    /// Target node.
    pub to: usize,
}

/// One executed migration, recorded in the [`ClusterResult`](crate::ClusterResult).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRecord {
    /// Shared-clock instant of the migration (an epoch boundary).
    pub at: SimTime,
    /// Global stream id that moved.
    pub stream: usize,
    /// Source node.
    pub from: usize,
    /// Target node.
    pub to: usize,
}

/// Plans migrations off degraded disks (see module docs).
#[derive(Debug, Clone)]
pub struct Rebalancer {
    cfg: RebalanceConfig,
}

impl Rebalancer {
    /// Builds a rebalancer from its configuration.
    pub fn new(cfg: RebalanceConfig) -> Self {
        Rebalancer { cfg }
    }

    /// The configuration this rebalancer plans with.
    pub fn config(&self) -> &RebalanceConfig {
        &self.cfg
    }

    /// Plans this epoch's migrations. Pure: the same views always produce
    /// the same moves, in the same order.
    ///
    /// For every migratable stream whose disk factor meets the threshold
    /// (taken in ascending node order, then the node's own stream order),
    /// the target is the least-loaded node that is not degraded and is
    /// strictly healthier than the stream's disk — ties broken by lowest
    /// node index. Streams with no eligible target stay put: the
    /// rebalancer never moves a stream to a node it knows to be at least
    /// as degraded as the stream's source disk.
    pub fn plan(&self, views: &[NodeView]) -> Vec<MoveDecision> {
        let mut loads: Vec<usize> = views.iter().map(|v| v.live_streams).collect();
        let mut moves = Vec::new();
        for (vi, v) in views.iter().enumerate() {
            for m in &v.migratable {
                if moves.len() >= self.cfg.max_moves_per_check {
                    return moves;
                }
                if m.factor < self.cfg.threshold {
                    continue;
                }
                let target = views
                    .iter()
                    .enumerate()
                    .filter(|(wi, w)| {
                        *wi != vi
                            && w.worst_factor < self.cfg.threshold
                            && w.worst_factor < m.factor
                    })
                    .min_by(|(ai, a), (bi, b)| {
                        loads[*ai].cmp(&loads[*bi]).then(a.node.cmp(&b.node)).then(ai.cmp(bi))
                    });
                if let Some((wi, w)) = target {
                    moves.push(MoveDecision { global: m.global, from: v.node, to: w.node });
                    loads[wi] += 1;
                    loads[vi] = loads[vi].saturating_sub(1);
                }
            }
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> RebalanceConfig {
        RebalanceConfig::new(SimDuration::from_millis(100)).threshold(2.0)
    }

    fn view(node: usize, live: usize, worst: f64, migratable: &[(usize, f64)]) -> NodeView {
        NodeView {
            node,
            live_streams: live,
            worst_factor: worst,
            migratable: migratable
                .iter()
                .map(|&(global, factor)| MigratableStream { global, factor })
                .collect(),
        }
    }

    #[test]
    fn config_validates() {
        assert!(cfg().validate().is_ok());
        assert!(RebalanceConfig::new(SimDuration::ZERO).validate().is_err());
        assert!(cfg().threshold(1.0).validate().is_err());
        assert!(cfg().threshold(f64::NAN).validate().is_err());
    }

    #[test]
    fn degraded_streams_move_to_the_least_loaded_healthy_node() {
        let views = vec![
            view(0, 10, 8.0, &[(3, 8.0), (7, 8.0)]),
            view(1, 6, 1.0, &[]),
            view(2, 4, 1.0, &[]),
        ];
        let moves = Rebalancer::new(cfg()).plan(&views);
        assert_eq!(
            moves,
            vec![
                MoveDecision { global: 3, from: 0, to: 2 },
                MoveDecision { global: 7, from: 0, to: 2 }, // loads now 5 vs 6: node 2 again
            ]
        );
    }

    #[test]
    fn ties_break_toward_the_lowest_node_index() {
        let views = vec![view(0, 5, 1.0, &[]), view(1, 2, 4.0, &[(9, 4.0)]), view(2, 5, 1.0, &[])];
        let moves = Rebalancer::new(cfg()).plan(&views);
        assert_eq!(moves, vec![MoveDecision { global: 9, from: 1, to: 0 }]);
    }

    #[test]
    fn no_healthy_target_means_no_move() {
        // Every other node is itself at or past the threshold.
        let views = vec![view(0, 5, 8.0, &[(1, 8.0)]), view(1, 5, 2.0, &[])];
        assert!(Rebalancer::new(cfg()).plan(&views).is_empty());
        // A lone node has nowhere to go.
        let views = vec![view(0, 5, 8.0, &[(1, 8.0)])];
        assert!(Rebalancer::new(cfg()).plan(&views).is_empty());
    }

    #[test]
    fn move_cap_is_respected() {
        let views =
            vec![view(0, 10, 8.0, &[(0, 8.0), (1, 8.0), (2, 8.0), (3, 8.0)]), view(1, 0, 1.0, &[])];
        let r = Rebalancer::new(cfg().max_moves_per_check(2));
        assert_eq!(r.plan(&views).len(), 2);
    }

    proptest! {
        /// The rebalancer never migrates a stream to a node it knows to be
        /// more degraded than the stream's source disk — for any mix of
        /// node factors, loads and candidate streams.
        #[test]
        fn prop_never_moves_to_a_worse_node(
            factors in proptest::collection::vec(0.5f64..32.0, 2..8),
            loads in proptest::collection::vec(0usize..100, 2..8),
            threshold in 1.1f64..16.0,
            cap in 0usize..12,
        ) {
            let n = factors.len().min(loads.len());
            let mut next_global = 0;
            let views: Vec<NodeView> = (0..n)
                .map(|k| {
                    let worst = factors[k];
                    let migratable: Vec<MigratableStream> = (0..loads[k].min(5))
                        .map(|_| {
                            next_global += 1;
                            // Candidate factors never exceed the node's worst.
                            MigratableStream { global: next_global - 1, factor: worst }
                        })
                        .collect();
                    NodeView { node: k, live_streams: loads[k], worst_factor: worst, migratable }
                })
                .collect();
            let cfg = RebalanceConfig::new(SimDuration::from_millis(50))
                .threshold(threshold)
                .max_moves_per_check(cap);
            let moves = Rebalancer::new(cfg).plan(&views);
            prop_assert!(moves.len() <= cap);
            for mv in &moves {
                prop_assert!(mv.from != mv.to, "self-moves are meaningless");
                let src = &views[mv.from];
                let dst = &views[mv.to];
                let stream = src.migratable.iter().find(|m| m.global == mv.global)
                    .expect("moved stream was a candidate on its source");
                prop_assert!(stream.factor >= threshold, "only degraded streams move");
                prop_assert!(dst.worst_factor < threshold, "target must be healthy");
                prop_assert!(
                    dst.worst_factor < stream.factor,
                    "target ({}) must be strictly healthier than the source disk ({})",
                    dst.worst_factor,
                    stream.factor
                );
            }
            // Decisions are pure: replanning the same views is identical.
            let cfg = RebalanceConfig::new(SimDuration::from_millis(50))
                .threshold(threshold)
                .max_moves_per_check(cap);
            prop_assert_eq!(Rebalancer::new(cfg).plan(&views), moves);
        }
    }
}
