//! An `xdd`-style micro-benchmark front end.
//!
//! The paper uses the `xdd` disk exerciser for its real-system baselines:
//! N threads issue synchronous sequential reads of a fixed size, each thread
//! at its own file offset. [`XddRun`] builds the equivalent stream set.

use seqio_disk::bytes_to_blocks;

use crate::placement::{interval_offsets, uniform_offsets};
use crate::stream::StreamSpec;

/// Builder for an xdd-like run against one disk.
#[derive(Debug, Clone)]
pub struct XddRun {
    disk: usize,
    streams: usize,
    request_bytes: u64,
    requests_per_stream: u64,
    interval_bytes: Option<u64>,
}

impl XddRun {
    /// Starts a run description targeting global disk index `disk`.
    pub fn new(disk: usize) -> Self {
        XddRun {
            disk,
            streams: 1,
            request_bytes: 64 * 1024,
            requests_per_stream: 128,
            interval_bytes: None,
        }
    }

    /// Sets the number of concurrent threads/streams.
    pub fn streams(&mut self, n: usize) -> &mut Self {
        self.streams = n;
        self
    }

    /// Sets the per-request transfer size in bytes.
    pub fn request_bytes(&mut self, b: u64) -> &mut Self {
        self.request_bytes = b;
        self
    }

    /// Sets how many requests each stream issues.
    pub fn requests_per_stream(&mut self, n: u64) -> &mut Self {
        self.requests_per_stream = n;
        self
    }

    /// Places streams at fixed byte intervals (the paper's Figure 5 uses
    /// 1 GByte) instead of spreading them uniformly over the disk.
    pub fn interval_bytes(&mut self, b: u64) -> &mut Self {
        self.interval_bytes = Some(b);
        self
    }

    /// Materializes the stream specs for a disk of `total_blocks`.
    ///
    /// # Panics
    ///
    /// Panics if the layout does not fit the disk or any parameter is zero.
    pub fn build(&self, total_blocks: u64) -> Vec<StreamSpec> {
        assert!(self.streams > 0, "xdd needs at least one stream");
        let request_blocks = bytes_to_blocks(self.request_bytes);
        assert!(request_blocks > 0, "request size must be positive");
        let run_blocks = request_blocks * self.requests_per_stream;
        let offsets = match self.interval_bytes {
            Some(b) => interval_offsets(total_blocks, self.streams, bytes_to_blocks(b), run_blocks),
            None => {
                let offs = uniform_offsets(total_blocks, self.streams);
                // Ensure each stream's run fits before the next offset/disk end.
                let spacing = if self.streams > 1 { offs[1] - offs[0] } else { total_blocks };
                assert!(
                    run_blocks <= spacing,
                    "streams overlap: {run_blocks} blocks per run but spacing is {spacing}"
                );
                offs
            }
        };
        offsets
            .into_iter()
            .map(|start| {
                StreamSpec::sequential(self.disk, start, request_blocks, self.requests_per_stream)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio_simcore::units::{GIB, KIB};

    #[test]
    fn defaults_build_one_stream() {
        let specs = XddRun::new(0).build(10_000_000);
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].request_blocks, 128);
        assert_eq!(specs[0].num_requests, 128);
        assert_eq!(specs[0].disk, 0);
    }

    #[test]
    fn builder_chains() {
        let specs = XddRun::new(2)
            .streams(16)
            .request_bytes(256 * KIB)
            .requests_per_stream(64)
            .build(100_000_000);
        assert_eq!(specs.len(), 16);
        assert!(specs.iter().all(|s| s.request_blocks == 512 && s.disk == 2));
        // Uniform spacing.
        assert_eq!(specs[1].start - specs[0].start, 100_000_000 / 16);
    }

    #[test]
    fn gigabyte_interval_placement() {
        let total = 200_000_000; // ~95 GiB of blocks
        let specs =
            XddRun::new(0).streams(4).interval_bytes(GIB).requests_per_stream(16).build(total);
        assert_eq!(specs[1].start, GIB / 512);
        assert_eq!(specs[3].start, 3 * (GIB / 512));
    }

    #[test]
    #[should_panic(expected = "streams overlap")]
    fn overlapping_runs_panic() {
        // 4 streams on a tiny disk with long runs.
        let _ = XddRun::new(0).streams(4).requests_per_stream(10_000).build(100_000);
    }
}
