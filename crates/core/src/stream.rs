//! The stream table: state for every detected sequential stream.

use std::collections::{BTreeMap, HashMap, VecDeque};

use seqio_simcore::SimTime;

use crate::buffer::{Lba, StreamId};

/// A client request parked on a stream's private queue until its data is
/// staged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRequest {
    /// Caller-side request identifier.
    pub client: u64,
    /// First block requested.
    pub lba: Lba,
    /// Length in blocks.
    pub blocks: u64,
}

/// State of one detected sequential stream.
#[derive(Debug)]
pub struct Stream {
    /// Identifier.
    pub id: StreamId,
    /// Destination disk.
    pub disk: usize,
    /// Next block the client is expected to ask for.
    pub client_next: Lba,
    /// Next block the scheduler will read ahead from the disk.
    pub frontier: Lba,
    /// Client requests waiting for data.
    pub pending: VecDeque<PendingRequest>,
    /// `true` while the stream occupies a dispatch-set slot.
    pub dispatched: bool,
    /// `true` while the stream sits in the round-robin admission queue.
    pub waiting: bool,
    /// `true` while a read-ahead disk request is outstanding.
    pub inflight: bool,
    /// Read-ahead requests issued during the current residency.
    pub issued_in_residency: u64,
    /// Last time the stream saw a request or completed a fill.
    pub last_active: SimTime,
}

/// Lookup structure over all live streams.
#[derive(Debug, Default)]
pub struct StreamTable {
    streams: HashMap<StreamId, Stream>,
    /// Per disk: (client_next, id) ordered index for prefix matching.
    index: HashMap<usize, BTreeMap<(Lba, StreamId), ()>>,
    next_id: u64,
}

impl StreamTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// `true` when no streams are tracked.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Registers a new stream whose client is expected to continue at
    /// `client_next` and whose read-ahead starts at `frontier`.
    pub fn create(
        &mut self,
        disk: usize,
        client_next: Lba,
        frontier: Lba,
        now: SimTime,
    ) -> StreamId {
        let id = StreamId(self.next_id);
        self.next_id += 1;
        self.streams.insert(
            id,
            Stream {
                id,
                disk,
                client_next,
                frontier,
                pending: VecDeque::new(),
                dispatched: false,
                waiting: false,
                inflight: false,
                issued_in_residency: 0,
                last_active: now,
            },
        );
        self.index.entry(disk).or_default().insert((client_next, id), ());
        id
    }

    /// Borrows a stream.
    pub fn get(&self, id: StreamId) -> Option<&Stream> {
        self.streams.get(&id)
    }

    /// Mutably borrows a stream.
    pub fn get_mut(&mut self, id: StreamId) -> Option<&mut Stream> {
        self.streams.get_mut(&id)
    }

    /// Finds the stream on `disk` whose expected next block is at or up to
    /// `slack` blocks behind `lba` (i.e. `client_next <= lba <=
    /// client_next + slack`). Prefers the closest (largest `client_next`).
    pub fn match_request(&self, disk: usize, lba: Lba, slack: u64) -> Option<StreamId> {
        let idx = self.index.get(&disk)?;
        let lo = (lba.saturating_sub(slack), StreamId(0));
        let hi = (lba, StreamId(u64::MAX));
        idx.range(lo..=hi).next_back().map(|(&(_, id), ())| id)
    }

    /// Moves a stream's expected-next pointer (reindexing it).
    ///
    /// # Panics
    ///
    /// Panics if the stream does not exist.
    pub fn advance_client_next(&mut self, id: StreamId, new_next: Lba) {
        let s = self.streams.get_mut(&id).expect("advance on unknown stream");
        if s.client_next == new_next {
            return;
        }
        let idx = self.index.get_mut(&s.disk).expect("index out of sync");
        idx.remove(&(s.client_next, id));
        idx.insert((new_next, id), ());
        s.client_next = new_next;
    }

    /// Removes a stream, returning it.
    pub fn remove(&mut self, id: StreamId) -> Option<Stream> {
        let s = self.streams.remove(&id)?;
        if let Some(idx) = self.index.get_mut(&s.disk) {
            idx.remove(&(s.client_next, id));
        }
        Some(s)
    }

    /// Iterates over all streams.
    pub fn iter(&self) -> impl Iterator<Item = &Stream> {
        self.streams.values()
    }

    /// Ids of streams idle since before `cutoff` with nothing pending or in
    /// flight — garbage-collection candidates.
    pub fn idle_streams(&self, cutoff: SimTime) -> Vec<StreamId> {
        self.streams
            .values()
            .filter(|s| {
                s.last_active < cutoff && s.pending.is_empty() && !s.inflight && !s.dispatched
            })
            .map(|s| s.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn create_and_match_exact() {
        let mut tb = StreamTable::new();
        let id = tb.create(0, 1000, 1000, t(0));
        assert_eq!(tb.match_request(0, 1000, 128), Some(id));
        assert_eq!(tb.match_request(0, 999, 128), None, "behind expected");
        assert_eq!(tb.match_request(1, 1000, 128), None, "wrong disk");
    }

    #[test]
    fn match_allows_slack() {
        let mut tb = StreamTable::new();
        let id = tb.create(0, 1000, 1000, t(0));
        assert_eq!(tb.match_request(0, 1100, 128), Some(id));
        assert_eq!(tb.match_request(0, 1129, 128), None, "past slack");
    }

    #[test]
    fn closest_stream_wins() {
        let mut tb = StreamTable::new();
        let _far = tb.create(0, 900, 900, t(0));
        let near = tb.create(0, 1000, 1000, t(0));
        assert_eq!(tb.match_request(0, 1000, 200), Some(near));
    }

    #[test]
    fn advance_reindexes() {
        let mut tb = StreamTable::new();
        let id = tb.create(0, 1000, 1000, t(0));
        tb.advance_client_next(id, 1128);
        assert_eq!(tb.match_request(0, 1000, 0), None);
        assert_eq!(tb.match_request(0, 1128, 0), Some(id));
        assert_eq!(tb.get(id).unwrap().client_next, 1128);
    }

    #[test]
    fn remove_clears_index() {
        let mut tb = StreamTable::new();
        let id = tb.create(0, 1000, 1000, t(0));
        assert!(tb.remove(id).is_some());
        assert!(tb.remove(id).is_none());
        assert_eq!(tb.match_request(0, 1000, 0), None);
        assert!(tb.is_empty());
    }

    #[test]
    fn idle_detection_excludes_busy_streams() {
        let mut tb = StreamTable::new();
        let idle = tb.create(0, 0, 0, t(0));
        let busy = tb.create(0, 5000, 5000, t(0));
        tb.get_mut(busy).unwrap().inflight = true;
        let recent = tb.create(0, 9000, 9000, t(100));
        let ids = tb.idle_streams(t(50));
        assert!(ids.contains(&idle));
        assert!(!ids.contains(&busy), "inflight streams are not idle");
        assert!(!ids.contains(&recent), "recently active streams are not idle");
    }

    #[test]
    fn two_streams_same_position_coexist() {
        let mut tb = StreamTable::new();
        let a = tb.create(0, 1000, 1000, t(0));
        let b = tb.create(0, 1000, 1000, t(0));
        // Both live; match returns one of them deterministically (the larger id).
        let m = tb.match_request(0, 1000, 0).unwrap();
        assert!(m == a || m == b);
        assert_eq!(tb.len(), 2);
        tb.remove(m);
        assert!(tb.match_request(0, 1000, 0).is_some(), "the other remains indexed");
    }
}
