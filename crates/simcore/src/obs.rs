//! Opt-in observability primitives: request-lifecycle phases, named
//! metric time series, and the sampler configuration that drives them.
//!
//! The layer follows the same discipline as fault injection: **strictly
//! opt-in and zero-perturbation**. With an [`ObsConfig`] left disabled
//! (the default) no component draws extra randomness, schedules extra
//! events, or changes any simulation output; enabling it only *records*
//! — phase timestamps into spans and periodic metric snapshots into a
//! columnar [`MetricSeries`] — without feeding anything back into the
//! models.
//!
//! # Examples
//!
//! ```
//! use seqio_simcore::{MetricsHub, ObsConfig, SimDuration, SimTime};
//!
//! let cfg = ObsConfig::new().with_metrics().sample_every(SimDuration::from_millis(5));
//! assert!(cfg.metrics && !cfg.spans);
//!
//! let mut hub = MetricsHub::new(cfg.sample_interval);
//! let depth = hub.gauge("disk0.queue_depth", "requests");
//! let served = hub.counter("node.requests_completed", "requests");
//! hub.set(depth, 3.0);
//! hub.add(served, 1.0);
//! hub.sample(SimTime::ZERO + SimDuration::from_millis(5));
//! let series = hub.series();
//! assert_eq!(series.len(), 1);
//! assert_eq!(series.column(depth)[0], 3.0);
//! ```

use std::fmt::Write as _;

use crate::time::{SimDuration, SimTime};

/// The lifecycle phases a client request can pass through, in order.
///
/// Not every request visits every phase: a direct-path request is never
/// classified or staged, a memory hit never touches a disk. Missing
/// phases contribute zero duration, so per-phase durations always sum to
/// the end-to-end latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanPhase {
    /// The client handed the request to the network.
    Enqueued,
    /// The scheduler matched the request to a (new or existing) stream.
    Classified,
    /// The owning stream held a dispatch-set slot for this request.
    DispatchAdmitted,
    /// The disk I/O covering this request was issued.
    DiskIssued,
    /// The covering disk I/O completed at the device.
    DiskComplete,
    /// The requested data was resident in the buffered set.
    Staged,
    /// The response reached the client.
    Delivered,
    /// The response finished crossing the client-facing network link
    /// (stamped by the front-end tier; storage-node runs leave it unset).
    NetworkDelivered,
}

impl SpanPhase {
    /// Every phase, in lifecycle order.
    pub const ALL: [SpanPhase; 8] = [
        SpanPhase::Enqueued,
        SpanPhase::Classified,
        SpanPhase::DispatchAdmitted,
        SpanPhase::DiskIssued,
        SpanPhase::DiskComplete,
        SpanPhase::Staged,
        SpanPhase::Delivered,
        SpanPhase::NetworkDelivered,
    ];

    /// Number of phases.
    pub const COUNT: usize = Self::ALL.len();

    /// Position in lifecycle order (0 = [`Enqueued`](SpanPhase::Enqueued)).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used in CSV/JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::Enqueued => "enqueued",
            SpanPhase::Classified => "classified",
            SpanPhase::DispatchAdmitted => "dispatch_admitted",
            SpanPhase::DiskIssued => "disk_issued",
            SpanPhase::DiskComplete => "disk_complete",
            SpanPhase::Staged => "staged",
            SpanPhase::Delivered => "delivered",
            SpanPhase::NetworkDelivered => "network_delivered",
        }
    }
}

/// What the observability layer should record during a run.
///
/// The default configuration records nothing; both facets are opt-in and
/// guaranteed not to perturb the simulation (no extra RNG draws, no
/// change to event arithmetic, `events_simulated` excludes sampler
/// ticks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record one lifecycle span per completed client request inside the
    /// measured window.
    pub spans: bool,
    /// Snapshot registered metrics every `sample_interval` into a
    /// columnar time series.
    pub metrics: bool,
    /// Sampling period for the metric time series.
    pub sample_interval: SimDuration,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsConfig {
    /// Everything disabled, with the default 10 ms sampling period.
    pub fn new() -> Self {
        ObsConfig { spans: false, metrics: false, sample_interval: SimDuration::from_millis(10) }
    }

    /// Both spans and metric sampling enabled.
    pub fn all() -> Self {
        ObsConfig::new().with_spans().with_metrics()
    }

    /// Enables lifecycle-span recording.
    pub fn with_spans(mut self) -> Self {
        self.spans = true;
        self
    }

    /// Enables periodic metric sampling.
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Sets the metric sampling period.
    pub fn sample_every(mut self, interval: SimDuration) -> Self {
        self.sample_interval = interval;
        self
    }

    /// `true` when any facet is switched on.
    pub fn is_enabled(&self) -> bool {
        self.spans || self.metrics
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Rejects metric sampling with a zero period (the sampler event
    /// would never advance the clock).
    pub fn validate(&self) -> Result<(), crate::SeqioError> {
        if self.metrics && self.sample_interval == SimDuration::ZERO {
            return Err(crate::SeqioError::Experiment(
                "observability: metric sample interval must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Whether a metric accumulates or reflects an instantaneous level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically accumulating value (events, bytes, retries).
    Counter,
    /// Instantaneous level (queue depth, staged bytes, busy fraction).
    Gauge,
}

/// Handle to a registered metric (index into the hub's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

#[derive(Debug, Clone)]
struct MetricDef {
    name: String,
    unit: &'static str,
    kind: MetricKind,
}

/// Registry of named counters and gauges plus the columnar time series
/// their periodic snapshots accumulate into.
///
/// Components register metrics up front, update current values as they
/// see fit (`set`/`add` are plain float stores — no locking, no
/// allocation after registration), and a periodic sampler calls
/// [`sample`](MetricsHub::sample) to append one row. Sampling never
/// perturbs the simulation: it reads model state, it does not change it.
#[derive(Debug, Clone)]
pub struct MetricsHub {
    defs: Vec<MetricDef>,
    values: Vec<f64>,
    series: MetricSeries,
}

impl MetricsHub {
    /// Creates an empty hub whose series advertises `interval` as its
    /// sampling period.
    pub fn new(interval: SimDuration) -> Self {
        MetricsHub {
            defs: Vec::new(),
            values: Vec::new(),
            series: MetricSeries {
                interval,
                names: Vec::new(),
                units: Vec::new(),
                times: Vec::new(),
                columns: Vec::new(),
            },
        }
    }

    /// Registers a counter; returns its handle.
    pub fn counter(&mut self, name: &str, unit: &'static str) -> MetricId {
        self.register(name, unit, MetricKind::Counter)
    }

    /// Registers a gauge; returns its handle.
    pub fn gauge(&mut self, name: &str, unit: &'static str) -> MetricId {
        self.register(name, unit, MetricKind::Gauge)
    }

    fn register(&mut self, name: &str, unit: &'static str, kind: MetricKind) -> MetricId {
        assert!(self.series.times.is_empty(), "register metrics before the first sample");
        let id = MetricId(self.defs.len());
        self.defs.push(MetricDef { name: name.to_string(), unit, kind });
        self.values.push(0.0);
        self.series.names.push(name.to_string());
        self.series.units.push(unit.to_string());
        self.series.columns.push(Vec::new());
        id
    }

    /// Number of registered metrics.
    pub fn metric_count(&self) -> usize {
        self.defs.len()
    }

    /// Name of a registered metric.
    pub fn name(&self, id: MetricId) -> &str {
        &self.defs[id.0].name
    }

    /// Unit of a registered metric.
    pub fn unit(&self, id: MetricId) -> &'static str {
        self.defs[id.0].unit
    }

    /// Kind of a registered metric.
    pub fn kind(&self, id: MetricId) -> MetricKind {
        self.defs[id.0].kind
    }

    /// Overwrites the current value (gauges).
    pub fn set(&mut self, id: MetricId, value: f64) {
        self.values[id.0] = value;
    }

    /// Adds to the current value (counters).
    pub fn add(&mut self, id: MetricId, delta: f64) {
        self.values[id.0] += delta;
    }

    /// Current (not-yet-sampled) value.
    pub fn value(&self, id: MetricId) -> f64 {
        self.values[id.0]
    }

    /// Appends one row: every metric's current value at `now`.
    pub fn sample(&mut self, now: SimTime) {
        self.series.times.push(now);
        for (col, &v) in self.series.columns.iter_mut().zip(&self.values) {
            col.push(v);
        }
    }

    /// The accumulated time series.
    pub fn series(&self) -> &MetricSeries {
        &self.series
    }

    /// Consumes the hub, keeping only the series.
    pub fn into_series(self) -> MetricSeries {
        self.series
    }
}

/// A columnar metric time series: one shared time axis, one column per
/// registered metric, in registration order.
#[derive(Debug, Clone)]
pub struct MetricSeries {
    interval: SimDuration,
    names: Vec<String>,
    units: Vec<String>,
    times: Vec<SimTime>,
    columns: Vec<Vec<f64>>,
}

impl MetricSeries {
    /// The sampling period the series was recorded with.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Number of samples (rows).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no sample was ever taken.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The shared time axis.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Metric names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// One metric's samples.
    pub fn column(&self, id: MetricId) -> &[f64] {
        &self.columns[id.0]
    }

    /// Looks a column up by its registered name.
    pub fn column_by_name(&self, name: &str) -> Option<&[f64]> {
        self.names.iter().position(|n| n == name).map(|i| self.columns[i].as_slice())
    }

    /// Mean of one column (0 when empty).
    pub fn column_mean(&self, name: &str) -> f64 {
        match self.column_by_name(name) {
            Some(c) if !c.is_empty() => c.iter().sum::<f64>() / c.len() as f64,
            _ => 0.0,
        }
    }

    /// Maximum of one column (0 when empty).
    pub fn column_max(&self, name: &str) -> f64 {
        self.column_by_name(name).map(|c| c.iter().copied().fold(0.0f64, f64::max)).unwrap_or(0.0)
    }

    /// Merges several independently recorded series onto one shared
    /// clock, prefixing every column name with its source label
    /// (`"node0." + name`).
    ///
    /// All series share the simulation's time origin (`SimTime::ZERO`)
    /// and must have been sampled with the same interval, so rows align
    /// by index. The merged time axis is the longest input axis; series
    /// that stopped sampling earlier (their node drained sooner) are
    /// padded by holding their last sampled value, or `0.0` when they
    /// never sampled at all. Inputs paired with an empty label keep
    /// their column names unprefixed.
    ///
    /// # Errors
    ///
    /// Rejects inputs whose sampling intervals disagree — rows would not
    /// represent the same instants and the merge would be meaningless.
    pub fn merge_labeled(
        parts: &[(&str, &MetricSeries)],
    ) -> Result<MetricSeries, crate::SeqioError> {
        let interval =
            parts.iter().map(|(_, s)| s.interval).max().unwrap_or(SimDuration::from_millis(10));
        if parts.iter().any(|(_, s)| s.interval != interval) {
            return Err(crate::SeqioError::Experiment(
                "metric series merge: sampling intervals differ across inputs".into(),
            ));
        }
        let times = parts
            .iter()
            .map(|(_, s)| &s.times)
            .max_by_key(|t| t.len())
            .cloned()
            .unwrap_or_default();
        let rows = times.len();
        let mut merged = MetricSeries {
            interval,
            names: Vec::new(),
            units: Vec::new(),
            times,
            columns: Vec::new(),
        };
        for (label, series) in parts {
            for ((name, unit), col) in series.names.iter().zip(&series.units).zip(&series.columns) {
                merged.names.push(if label.is_empty() {
                    name.clone()
                } else {
                    format!("{label}.{name}")
                });
                merged.units.push(unit.clone());
                let mut out = col.clone();
                let pad = out.last().copied().unwrap_or(0.0);
                out.resize(rows, pad);
                merged.columns.push(out);
            }
        }
        Ok(merged)
    }

    /// Renders the series as CSV: a `time_ms` column followed by one
    /// column per metric (header row carries `name [unit]`). Header
    /// fields containing a comma, quote or newline — possible once
    /// [`merge_labeled`](Self::merge_labeled) prefixes arbitrary node
    /// labels — are RFC 4180-quoted, so the file always round-trips
    /// through [`from_csv`](Self::from_csv).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ms");
        for (n, u) in self.names.iter().zip(&self.units) {
            let _ = write!(out, ",{}", csv_field(&format!("{n} [{u}]")));
        }
        out.push('\n');
        for (row, &t) in self.times.iter().enumerate() {
            let _ = write!(out, "{:.3}", t.as_millis_f64());
            for col in &self.columns {
                let _ = write!(out, ",{}", fmt_value(col[row]));
            }
            out.push('\n');
        }
        out
    }

    /// Parses a CSV written by [`to_csv`](Self::to_csv) back into a
    /// series. The sampling interval is not encoded in the file; it is
    /// inferred from the first two rows' spacing (default 10 ms for
    /// shorter files).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed header field or cell.
    pub fn from_csv(csv: &str) -> Result<MetricSeries, String> {
        let mut lines = csv.lines();
        let header = lines.next().ok_or("metric CSV is empty")?;
        let fields = split_csv_line(header)?;
        match fields.first().map(String::as_str) {
            Some("time_ms") => {}
            other => return Err(format!("expected a time_ms header column, got {other:?}")),
        }
        let mut names = Vec::new();
        let mut units = Vec::new();
        for f in &fields[1..] {
            // `name [unit]`: the unit bracket is the last one on the field.
            let (name, unit) = match f.rfind(" [") {
                Some(i) if f.ends_with(']') => (&f[..i], &f[i + 2..f.len() - 1]),
                _ => return Err(format!("header field {f:?} is not of the form `name [unit]`")),
            };
            names.push(name.to_string());
            units.push(unit.to_string());
        }
        let mut times = Vec::new();
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let cells = split_csv_line(line)?;
            if cells.len() != names.len() + 1 {
                return Err(format!(
                    "row {}: expected {} fields, got {}",
                    i + 2,
                    names.len() + 1,
                    cells.len()
                ));
            }
            let ms: f64 = cells[0]
                .parse()
                .map_err(|_| format!("row {}: bad time_ms {:?}", i + 2, cells[0]))?;
            times.push(SimTime::from_nanos((ms * 1e6).round() as u64));
            for (col, cell) in columns.iter_mut().zip(&cells[1..]) {
                col.push(cell.parse().map_err(|_| format!("row {}: bad sample {cell:?}", i + 2))?);
            }
        }
        let interval = match times.len() {
            0 | 1 => SimDuration::from_millis(10),
            _ => times[1].duration_since(times[0]),
        };
        Ok(MetricSeries { interval, names, units, times, columns })
    }
}

/// Quotes one CSV field per RFC 4180 when it contains a delimiter, quote
/// or line break; passes clean fields through untouched.
fn csv_field(f: &str) -> String {
    if f.contains(',') || f.contains('"') || f.contains('\n') || f.contains('\r') {
        format!("\"{}\"", f.replace('"', "\"\""))
    } else {
        f.to_string()
    }
}

/// Splits one CSV line into fields, honouring RFC 4180 quoting.
fn split_csv_line(line: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if field.is_empty() && !quoted => quoted = true,
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    quoted = false;
                }
            }
            ',' if !quoted => out.push(std::mem::take(&mut field)),
            c => field.push(c),
        }
    }
    if quoted {
        return Err(format!("unterminated quote in CSV line {line:?}"));
    }
    out.push(field);
    Ok(out)
}

/// Formats a sample compactly: integers without a fraction, everything
/// else with six significant decimals.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_ordered_and_named() {
        assert_eq!(SpanPhase::COUNT, 8);
        for (i, p) in SpanPhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(!p.name().is_empty());
        }
        assert_eq!(SpanPhase::Enqueued.index(), 0);
        assert_eq!(SpanPhase::Delivered.index(), 6);
        assert_eq!(SpanPhase::NetworkDelivered.index(), 7);
        assert_eq!(SpanPhase::NetworkDelivered.name(), "network_delivered");
    }

    #[test]
    fn config_defaults_disabled() {
        let c = ObsConfig::default();
        assert!(!c.is_enabled());
        assert!(c.validate().is_ok());
        let c = ObsConfig::all();
        assert!(c.spans && c.metrics && c.is_enabled());
        let bad = ObsConfig::new().with_metrics().sample_every(SimDuration::ZERO);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn hub_samples_registered_metrics() {
        let mut hub = MetricsHub::new(SimDuration::from_millis(1));
        let g = hub.gauge("depth", "requests");
        let c = hub.counter("served", "requests");
        assert_eq!(hub.metric_count(), 2);
        assert_eq!(hub.name(g), "depth");
        assert_eq!(hub.kind(c), MetricKind::Counter);
        hub.set(g, 4.0);
        hub.add(c, 2.0);
        hub.add(c, 1.0);
        hub.sample(SimTime::from_nanos(1_000_000));
        hub.set(g, 1.5);
        hub.sample(SimTime::from_nanos(2_000_000));
        let s = hub.series();
        assert_eq!(s.len(), 2);
        assert_eq!(s.column(g), &[4.0, 1.5]);
        assert_eq!(s.column(c), &[3.0, 3.0]);
        assert_eq!(s.column_by_name("served").unwrap(), &[3.0, 3.0]);
        assert_eq!(s.column_by_name("absent"), None);
        assert!((s.column_mean("depth") - 2.75).abs() < 1e-12);
        assert_eq!(s.column_max("depth"), 4.0);
    }

    #[test]
    fn csv_has_time_axis_and_units() {
        let mut hub = MetricsHub::new(SimDuration::from_millis(1));
        let g = hub.gauge("staged", "bytes");
        hub.set(g, 1024.0);
        hub.sample(SimTime::from_nanos(5_000_000));
        hub.set(g, 0.25);
        hub.sample(SimTime::from_nanos(10_000_000));
        let csv = hub.series().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "time_ms,staged [bytes]");
        assert_eq!(lines.next().unwrap(), "5.000,1024");
        assert_eq!(lines.next().unwrap(), "10.000,0.250000");
    }

    #[test]
    fn merge_aligns_clocks_and_pads_short_tails() {
        let mut a = MetricsHub::new(SimDuration::from_millis(1));
        let ga = a.gauge("depth", "requests");
        a.set(ga, 2.0);
        a.sample(SimTime::from_nanos(1_000_000));
        a.set(ga, 5.0);
        a.sample(SimTime::from_nanos(2_000_000));
        let mut b = MetricsHub::new(SimDuration::from_millis(1));
        let gb = b.gauge("depth", "requests");
        b.set(gb, 7.0);
        b.sample(SimTime::from_nanos(1_000_000));
        let merged =
            MetricSeries::merge_labeled(&[("node0", a.series()), ("node1", b.series())]).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.names(), &["node0.depth".to_string(), "node1.depth".to_string()]);
        assert_eq!(merged.column_by_name("node0.depth").unwrap(), &[2.0, 5.0]);
        // node1 drained after one sample: its last value is held.
        assert_eq!(merged.column_by_name("node1.depth").unwrap(), &[7.0, 7.0]);
        assert_eq!(merged.interval(), SimDuration::from_millis(1));
        // Empty labels keep names unprefixed; empty input set merges to empty.
        let plain = MetricSeries::merge_labeled(&[("", a.series())]).unwrap();
        assert_eq!(plain.names(), &["depth".to_string()]);
        assert!(MetricSeries::merge_labeled(&[]).unwrap().is_empty());
        // Interval mismatch is an error, not a silent misalignment.
        let c = MetricsHub::new(SimDuration::from_millis(2));
        assert!(MetricSeries::merge_labeled(&[("a", a.series()), ("c", c.series())]).is_err());
    }

    #[test]
    fn csv_round_trips_awkward_column_names() {
        // Labels carrying the CSV delimiter and quotes — the shapes a
        // `merge_labeled` node prefix can produce from user-named nodes.
        let mut hub = MetricsHub::new(SimDuration::from_millis(2));
        let a = hub.gauge("rack 0, shelf 1.depth", "requests");
        let b = hub.counter("say \"hi\"", "events");
        hub.set(a, 1.5);
        hub.add(b, 2.0);
        hub.sample(SimTime::from_nanos(2_000_000));
        hub.set(a, 3.0);
        hub.sample(SimTime::from_nanos(4_000_000));
        let series = hub.series();
        let csv = series.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(header.contains("\"rack 0, shelf 1.depth [requests]\""), "{header}");
        assert!(header.contains("\"say \"\"hi\"\" [events]\""), "{header}");
        let parsed = MetricSeries::from_csv(&csv).unwrap();
        assert_eq!(parsed.names(), series.names());
        assert_eq!(parsed.units, series.units);
        assert_eq!(parsed.times(), series.times());
        assert_eq!(parsed.columns, series.columns);
        assert_eq!(parsed.interval(), series.interval());
        // A clean series round-trips without any quoting.
        let mut plain = MetricsHub::new(SimDuration::from_millis(1));
        let g = plain.gauge("depth", "requests");
        plain.set(g, 2.0);
        plain.sample(SimTime::from_nanos(1_000_000));
        let csv = plain.series().to_csv();
        assert!(!csv.contains('"'), "{csv}");
        assert_eq!(MetricSeries::from_csv(&csv).unwrap().names(), plain.series().names());
    }

    #[test]
    fn csv_parser_rejects_malformed_input() {
        assert!(MetricSeries::from_csv("").is_err());
        assert!(MetricSeries::from_csv("wrong,depth [x]\n").is_err());
        assert!(MetricSeries::from_csv("time_ms,depth\n").is_err(), "missing unit bracket");
        assert!(MetricSeries::from_csv("time_ms,depth [x]\n1.000\n").is_err(), "short row");
        assert!(MetricSeries::from_csv("time_ms,depth [x]\n1.000,abc\n").is_err(), "bad cell");
        assert!(MetricSeries::from_csv("time_ms,\"depth [x]\n").is_err(), "unterminated quote");
    }

    #[test]
    #[should_panic(expected = "register metrics before the first sample")]
    fn late_registration_panics() {
        let mut hub = MetricsHub::new(SimDuration::from_millis(1));
        hub.sample(SimTime::ZERO);
        let _ = hub.gauge("late", "x");
    }
}
