//! Scenario determinism: record→replay round-trips bit-for-bit, outcomes
//! are invariant under the worker count, the scenario RNG stream is
//! disjoint from every other seed derivation, and a configured-but-inert
//! adaptive tuner leaves runs bit-identical to the static tune — pinned
//! all the way down to the Figure-1 golden CSV hash.

use seqio_client::SESSION_SEED_INDEX;
use seqio_core::ServerConfig;
use seqio_node::sweep::derive_seed;
use seqio_node::{Experiment, Frontend, NodeShape, RunResult};
use seqio_scenario::{
    generate, matrix_scenario, matrix_template, AdaptiveConfig, MatrixScale, ScenarioKind,
    ScenarioParams, ScenarioRun, ScenarioTrace, SCENARIO_SEED_INDEX,
};
use seqio_simcore::units::KIB;
use seqio_simcore::SimDuration;

fn scheduler_template(scale: &MatrixScale, seed: u64) -> Experiment {
    let mut t = matrix_template(scale, seed);
    t.frontend = Frontend::StreamScheduler(ServerConfig::auto_tune(1 << 30, 8));
    t
}

/// Every observable a figure could plot, plus the diagnostics (the same
/// fields the sweep determinism suite compares).
fn result_fingerprint(r: &RunResult) -> (u64, u64, Vec<u64>, Vec<u64>, u64, u64, String) {
    (
        r.bytes_delivered,
        r.requests_completed,
        r.disk_seeks.clone(),
        r.disk_ops.clone(),
        r.ctrl_wasted_bytes,
        r.ctrl_bytes_from_disks,
        format!(
            "{:?} {:?} {:?} {:?} {:?}",
            r.per_stream_mbs, r.window, r.disk_read_errors, r.disk_retries, r.disk_timeouts
        ),
    )
}

/// Recording a generated scenario to the text trace format and replaying
/// the parsed copy reproduces the original run bit-for-bit, for every
/// scenario kind — with the adaptive tuner live, so epoch retunes are
/// covered by the round trip too.
#[test]
fn record_replay_reproduces_every_scenario_bit_for_bit() {
    let scale = MatrixScale::quick();
    for kind in ScenarioKind::ALL {
        let scenario = matrix_scenario(kind, &scale, 11).unwrap();
        let mut template = scheduler_template(&scale, 11);
        template.faults = scenario.faults.clone();

        let mut original = ScenarioRun::new(template.clone(), scenario.trace.clone());
        original.adaptive = Some(AdaptiveConfig::standard());

        let text = scenario.trace.to_text();
        let reparsed = ScenarioTrace::from_text(&text).unwrap();
        assert_eq!(reparsed.to_text(), text, "{}: text form is not a fixed point", kind.name());
        let mut replay = ScenarioRun::new(template, reparsed);
        replay.adaptive = Some(AdaptiveConfig::standard());

        let a = original.run().unwrap();
        let b = replay.run().unwrap();
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "{}: replay diverged from the recorded run",
            kind.name()
        );
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(result_fingerprint(x), result_fingerprint(y), "{}", kind.name());
        }
    }
}

/// A multi-node scenario sharded over one worker and over seven produces
/// identical outcomes: the worker schedule cannot leak into results.
#[test]
fn outcomes_are_invariant_under_the_worker_count() {
    let scale = MatrixScale::quick();
    let template = scheduler_template(&scale, 11);
    let params = ScenarioParams::from_template(&template, 5, scale.streams_per_disk);
    for kind in [ScenarioKind::Churn, ScenarioKind::Video, ScenarioKind::SeekRestart] {
        let scenario = generate(kind, &params, 23).unwrap();
        let fp = |jobs: usize| {
            let mut run = ScenarioRun::new(template.clone(), scenario.trace.clone());
            run.jobs = Some(jobs);
            run.base_seed = Some(7);
            run.adaptive = Some(AdaptiveConfig::standard());
            run.run().unwrap().fingerprint()
        };
        assert_eq!(fp(1), fp(7), "{}: worker count leaked into the outcome", kind.name());
    }
}

/// Regression guard in the style of the session-seed guard: the scenario
/// generator's dedicated seed index maps to a seed stream disjoint from
/// per-node seeds, rotational-phase seeds, fault seeds, and the session
/// generator's own stream.
#[test]
fn scenario_seed_stream_stays_independent() {
    for base in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
        let scenario_seed = derive_seed(base, SCENARIO_SEED_INDEX);
        assert_ne!(scenario_seed, derive_seed(base, SESSION_SEED_INDEX));
        for k in 0..4096usize {
            let node_seed = derive_seed(base, k);
            assert_ne!(scenario_seed, node_seed, "collides with node {k} seed (base {base})");
            for disk in 0..64u64 {
                // The exact derivations the node simulation applies per
                // disk (see seqio-node system construction).
                let rotational = node_seed ^ (disk << 8) | 1;
                let fault = node_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (disk + 1);
                assert_ne!(scenario_seed, rotational, "collides with a rotational-phase seed");
                assert_ne!(scenario_seed, fault, "collides with a fault seed");
            }
        }
    }
}

/// A configured-but-inert adaptive tuner (every threshold unreachable)
/// run over an empty trace is bit-identical to `Experiment::run` on the
/// same static population: epoch health polling is read-only.
#[test]
fn inert_tuner_is_bit_identical_to_the_static_run() {
    let template = Experiment::builder()
        .shape(NodeShape::eight_disk())
        .streams_per_disk(3)
        .frontend(Frontend::StreamScheduler(ServerConfig::auto_tune(1 << 30, 8)))
        .warmup(SimDuration::from_millis(250))
        .duration(SimDuration::from_millis(750))
        .seed(11)
        .build();
    let static_result = template.run();

    let mut run = ScenarioRun::new(template, ScenarioTrace::new("inert-neutrality", 1));
    run.adaptive = Some(AdaptiveConfig::inert());
    let out = run.run().unwrap();
    assert!(out.retunes.is_empty(), "an inert tuner must never retune");
    assert_eq!(result_fingerprint(&static_result), result_fingerprint(&out.nodes[0]));
}

/// FNV-1a over the rendered CSV bytes — dependency-free and stable.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The scenario runner reproduces the Figure-1 golden CSV hash: driving
/// the fig01 subset points through `ScenarioRun` (empty traces — the
/// population is the template's own static streams) renders byte-for-byte
/// the same CSV the sweep determinism suite pins, so the runner cannot
/// drift from `Experiment::run` semantics without tripping the golden.
#[test]
fn scenario_runner_preserves_the_fig01_golden_hash() {
    const GOLDEN: u64 = 4786420990628480947;

    let per_disk = [1usize, 5];
    let requests = [64 * KIB, 256 * KIB];
    let mut results: Vec<RunResult> = Vec::new();
    for &streams in &per_disk {
        for &req in &requests {
            let template = Experiment::builder()
                .shape(NodeShape::sixty_disk())
                .streams_per_disk(streams)
                .request_size(req)
                .warmup(SimDuration::from_secs(1))
                .duration(SimDuration::from_secs(2))
                .seed(11)
                .build();
            let run = ScenarioRun::new(template, ScenarioTrace::new("fig01", 1));
            results.push(run.run().unwrap().nodes.remove(0));
        }
    }

    // Same layout `Figure::to_csv` produces: header of series labels, one
    // row per x value, y values formatted `{:.4}`.
    let mut csv = String::from("Request size,60 Streams,300 Streams\n");
    for (ri, x) in ["64K", "256K"].iter().enumerate() {
        csv.push_str(x);
        for si in 0..per_disk.len() {
            let y = results[si * requests.len() + ri].total_throughput_mbs();
            csv.push_str(&format!(",{y:.4}"));
        }
        csv.push('\n');
    }

    assert_eq!(
        fnv1a(csv.as_bytes()),
        GOLDEN,
        "scenario-runner fig01 CSV drifted from the recorded golden output:\n{csv}"
    );
}
