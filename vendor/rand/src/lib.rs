//! Offline stub of the `rand` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors a minimal, API-compatible subset of `rand` 0.8:
//! exactly the surface `seqio-simcore::SimRng` consumes (`SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`).
//!
//! `SmallRng` is implemented as xoshiro256++ seeded through SplitMix64 —
//! the same algorithm the real `rand 0.8` `SmallRng` uses on 64-bit
//! platforms — so streams are deterministic, well distributed, and of the
//! same flavor as the crate this replaces. Exact bit-for-bit parity with
//! upstream `gen_range` is not guaranteed (upstream uses Lemire rejection
//! sampling; this stub uses a widening multiply without rejection).

use core::ops::Range;

/// Low-level generator interface: a source of raw 64-bit values.
pub trait RngCore {
    /// Returns the next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value of a primitive type uniformly over its natural range
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Item {
        range.sample_from(self)
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Types samplable from raw generator output ("standard" distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1) — rand's own mapping.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Half-open ranges usable with [`Rng::gen_range`].
pub trait UniformRange {
    /// Element type produced by the range.
    type Item;
    /// Samples one element uniformly.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Item;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Item = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening multiply: maps a raw u64 onto [0, span) with
                // negligible bias for the span sizes simulations use.
                let v = (rng.next_u64() as u128 * span) >> 64;
                self.start + v as $t
            }
        }
    )*};
}

impl_uniform_int!(u64, u32, usize);

impl UniformRange for Range<f64> {
    type Item = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample(rng);
        let v = self.start + unit * (self.end - self.start);
        // Guard the open upper bound against rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator — the algorithm behind `rand 0.8`'s
    /// `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors and used by rand.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(r.gen_range(10u64..20) >= 10);
            assert!(r.gen_range(10u64..20) < 20);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SmallRng::seed_from_u64(4);
        let n = 40_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
