//! Kernel file read-ahead (the 2.6-era ramping window).
//!
//! Each sequentially-read file gets a read-ahead window that starts small
//! and doubles up to `VM_MAX_READAHEAD` (128 KiB). Reads inside the cached
//! window hit the page cache; crossing the middle of the window triggers an
//! asynchronous fetch of the next window so a steady reader pipelines.

use crate::scheduler::Lba;

/// Read-ahead tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadaheadConfig {
    /// Initial window in bytes (Linux: 16 KiB).
    pub initial_bytes: u64,
    /// Maximum window in bytes (Linux: 128 KiB).
    pub max_bytes: u64,
}

impl Default for ReadaheadConfig {
    fn default() -> Self {
        ReadaheadConfig { initial_bytes: 16 * 1024, max_bytes: 128 * 1024 }
    }
}

impl ReadaheadConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if the windows are zero or misordered.
    pub fn validate(&self) -> Result<(), String> {
        if self.initial_bytes == 0 || self.max_bytes < self.initial_bytes {
            return Err("need 0 < initial <= max read-ahead".into());
        }
        Ok(())
    }
}

/// Outcome of a page-cache read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaOutcome {
    /// Served from the cache. `prefetch` asks the caller to start an
    /// asynchronous fetch of the next window.
    Hit {
        /// Background fetch to issue, if the reader crossed the trigger.
        prefetch: Option<(Lba, u64)>,
    },
    /// The data is already being fetched: the reader blocks until
    /// [`StreamRa::on_fetch_complete`] is called.
    Blocked,
    /// Cache miss: fetch this extent synchronously; the reader blocks.
    Miss {
        /// First block to fetch.
        lba: Lba,
        /// Blocks to fetch (the current window).
        blocks: u64,
    },
}

/// Per-file (per-stream) read-ahead state.
#[derive(Debug, Clone)]
pub struct StreamRa {
    cfg: ReadaheadConfig,
    /// Cached extent `[start, end)` (the most recent window(s)).
    cached: Option<(Lba, Lba)>,
    /// Extent currently being fetched.
    inflight: Option<(Lba, Lba)>,
    /// Current window size in blocks.
    window: u64,
    /// `true` once an async prefetch was triggered for the current window.
    triggered: bool,
}

impl StreamRa {
    /// Creates fresh state.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ReadaheadConfig) -> Self {
        cfg.validate().expect("invalid read-ahead config");
        StreamRa {
            cfg,
            cached: None,
            inflight: None,
            window: cfg.initial_bytes / 512,
            triggered: false,
        }
    }

    /// Current window in blocks.
    pub fn window_blocks(&self) -> u64 {
        self.window
    }

    fn grow(&mut self) {
        self.window = (self.window * 2).min(self.cfg.max_bytes / 512);
    }

    /// Processes a read of `[lba, lba+blocks)`.
    pub fn on_read(&mut self, lba: Lba, blocks: u64) -> RaOutcome {
        let end = lba + blocks;
        if let Some((cs, ce)) = self.cached {
            if lba >= cs && end <= ce {
                // Cache hit; maybe trigger the async next-window fetch when
                // the reader crosses the middle of the cached extent.
                let mut prefetch = None;
                if !self.triggered && self.inflight.is_none() && end * 2 >= cs + ce {
                    self.triggered = true;
                    self.grow();
                    prefetch = Some((ce, self.window));
                    self.inflight = Some((ce, ce + self.window));
                }
                return RaOutcome::Hit { prefetch };
            }
        }
        if self.inflight.is_some() {
            // Either inside the in-flight window, or a miss while a fetch
            // is outstanding: the reader waits for the fetch either way (a
            // file has at most one read-ahead in flight).
            return RaOutcome::Blocked;
        }
        // Miss: fetch a fresh window from the requested offset.
        let fetch = self.window.max(blocks);
        self.inflight = Some((lba, lba + fetch));
        self.triggered = false;
        RaOutcome::Miss { lba, blocks: fetch }
    }

    /// Notes that the in-flight fetch landed; the cached extent becomes the
    /// union of the old tail and the fetched window.
    ///
    /// # Panics
    ///
    /// Panics if no fetch was in flight.
    pub fn on_fetch_complete(&mut self) {
        let (is, ie) = self.inflight.take().expect("no fetch in flight");
        self.cached = match self.cached {
            // Contiguous extension: keep one merged extent.
            Some((cs, ce)) if ce == is => Some((cs, ie)),
            _ => Some((is, ie)),
        };
        self.triggered = false;
    }

    /// Bytes currently held in the page cache for this file.
    pub fn cached_bytes(&self) -> u64 {
        self.cached.map(|(s, e)| (e - s) * 512).unwrap_or(0)
    }

    /// Drops the cached extent (memory pressure).
    pub fn shrink(&mut self) {
        self.cached = None;
        self.window = self.cfg.initial_bytes / 512;
        self.triggered = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ra() -> StreamRa {
        StreamRa::new(ReadaheadConfig::default())
    }

    #[test]
    fn first_read_misses_with_initial_window() {
        let mut r = ra();
        match r.on_read(0, 8) {
            RaOutcome::Miss { lba, blocks } => {
                assert_eq!(lba, 0);
                assert_eq!(blocks, 32); // 16 KiB
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sequential_reads_hit_after_fetch() {
        let mut r = ra();
        let RaOutcome::Miss { blocks, .. } = r.on_read(0, 8) else { panic!() };
        r.on_fetch_complete();
        for i in 0..blocks / 8 / 2 - 1 {
            match r.on_read(i * 8, 8) {
                RaOutcome::Hit { .. } => {}
                other => panic!("read {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn crossing_the_middle_triggers_async_prefetch() {
        let mut r = ra();
        let _ = r.on_read(0, 8);
        r.on_fetch_complete(); // cached [0, 32)
                               // Read into the second half.
        match r.on_read(16, 8) {
            RaOutcome::Hit { prefetch: Some((lba, blocks)) } => {
                assert_eq!(lba, 32);
                assert_eq!(blocks, 64, "window doubled to 32 KiB");
            }
            other => panic!("{other:?}"),
        }
        // Only one trigger per window.
        assert!(matches!(r.on_read(24, 8), RaOutcome::Hit { prefetch: None }));
    }

    #[test]
    fn window_caps_at_max() {
        let mut r = ra();
        let mut at = 0u64;
        // Run several windows; the window must never exceed 128 KiB = 256 blocks.
        for _ in 0..8 {
            match r.on_read(at, 8) {
                RaOutcome::Miss { lba, blocks } => {
                    assert!(blocks <= 256);
                    r.on_fetch_complete();
                    at = lba; // keep reading from the window start
                }
                RaOutcome::Hit { prefetch } => {
                    if prefetch.is_some() {
                        r.on_fetch_complete();
                    }
                    at += 8;
                }
                RaOutcome::Blocked => {
                    r.on_fetch_complete();
                }
            }
        }
        assert!(r.window_blocks() <= 256);
    }

    #[test]
    fn read_into_inflight_blocks() {
        let mut r = ra();
        let _ = r.on_read(0, 8);
        r.on_fetch_complete(); // cached [0,32)
        let RaOutcome::Hit { prefetch: Some(_) } = r.on_read(16, 8) else { panic!() };
        // Next window [32, 96) is in flight; reading it blocks.
        assert_eq!(r.on_read(32, 8), RaOutcome::Blocked);
        r.on_fetch_complete();
        assert!(matches!(r.on_read(32, 8), RaOutcome::Hit { .. }));
    }

    #[test]
    fn merged_extent_spans_windows() {
        let mut r = ra();
        let _ = r.on_read(0, 8);
        r.on_fetch_complete();
        let RaOutcome::Hit { prefetch: Some(_) } = r.on_read(16, 8) else { panic!() };
        r.on_fetch_complete();
        // Old window [0,32) and new [32,96) merge: block 0 still cached.
        assert!(matches!(r.on_read(0, 8), RaOutcome::Hit { .. }));
        assert_eq!(r.cached_bytes(), 96 * 512);
    }

    #[test]
    fn random_reads_keep_missing() {
        let mut r = ra();
        for i in 0..10u64 {
            match r.on_read(i * 100_000, 8) {
                RaOutcome::Miss { .. } => r.on_fetch_complete(),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn shrink_resets_state() {
        let mut r = ra();
        let _ = r.on_read(0, 8);
        r.on_fetch_complete();
        r.shrink();
        assert_eq!(r.cached_bytes(), 0);
        assert!(matches!(r.on_read(8, 8), RaOutcome::Miss { .. }));
    }
}
